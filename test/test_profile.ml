(* Source-attributed profiling: provenance spans through lowering and loop
   transformations, #line directive emission, the Driver.profile report
   (coverage, memory gauges, folded stacks), RC byte gauges against a
   hand-computed allocation sequence, the caret diagnostic renderer, and
   the `mmc profile --json` CLI surface. *)

module Ir = Cir.Ir
module T = Cir.Transforms
module P = Support.Profile
module Pos = Support.Pos
module J = Support.Json

let all4 =
  Driver.compose
    [ Driver.matrix; Driver.transform; Driver.refptr; Driver.cilk ]

(* A self-contained eddy-style kernel (synthesized input, no readMatrix):
   temporal mean of a small SSH cube plus a fold over the result. *)
let eddy_src =
  {|
int main() {
  int m = 16;
  int n = 16;
  int p = 24;
  Matrix float <3> ssh = init(Matrix float <3>, m, n, p);
  ssh = with ([0,0,0] <= [i,j,k] < [m,n,p])
        genarray ([m,n,p], (float)((i * 7 + j * 13 + k * 5) % 37) / 37.0);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  means = with ([0,0] <= [i,j] < [m,n])
          genarray ([m,n],
            (with ([0] <= [k] < [p]) fold (+, 0f, ssh[i,j,k])) / p);
  float total = with ([0,0] <= [i,j] < [m,n]) fold (+, 0f, means[i,j]);
  int hot = 0;
  for (int i = 0; i < m; i++) {
    for (int j = 0; j < n; j++) {
      if (means[i, j] > total / (m * n)) { hot = hot + 1; }
    }
  }
  return hot;
}
|}

let lower_src ?(auto_par = false) src =
  match Driver.frontend all4 src with
  | Driver.Failed ds -> Alcotest.failf "frontend: %s" (Driver.diags_to_string ds)
  | Driver.Ok_ ast -> (
      match Driver.lower ~config:(Driver.config_of_flags ~auto_par all4) all4 ast with
      | Driver.Failed ds ->
          Alcotest.failf "lower: %s" (Driver.diags_to_string ds)
      | Driver.Ok_ prog -> prog)

(* Collect every For/ParFor loop record in a statement list. *)
let rec loops_of_stmts acc stmts = List.fold_left loops_of_stmt acc stmts

and loops_of_stmt acc s =
  match s with
  | Ir.For l | Ir.ParFor l -> loops_of_stmts (l :: acc) l.Ir.body
  | Ir.If (_, a, b) -> loops_of_stmts (loops_of_stmts acc a) b
  | Ir.While (_, b) | Ir.Block b | Ir.Located (_, b) -> loops_of_stmts acc b
  | _ -> acc

let program_loops (p : Ir.program) =
  List.concat_map (fun f -> loops_of_stmts [] f.Ir.f_body) p.Ir.funcs

(* --- provenance through lowering ----------------------------------------- *)

let test_lowering_stamps_provenance () =
  let prog = lower_src eddy_src in
  let loops = program_loops prog in
  Alcotest.(check bool) "program has loops" true (List.length loops > 5);
  List.iter
    (fun (l : Ir.loop) ->
      match l.Ir.prov with
      | Some sp ->
          Alcotest.(check bool)
            (Printf.sprintf "span %s points into the source"
               (Pos.span_to_string sp))
            true
            (sp.Pos.left.Pos.line >= 1
            && sp.Pos.left.Pos.line
               <= List.length (String.split_on_char '\n' eddy_src))
      | None ->
          Alcotest.failf "loop over '%s' lost its provenance" l.Ir.index)
    loops

let test_auto_par_keeps_provenance () =
  let prog = lower_src ~auto_par:true eddy_src in
  List.iter
    (fun (l : Ir.loop) ->
      Alcotest.(check bool)
        (Printf.sprintf "loop '%s' has prov" l.Ir.index)
        true (l.Ir.prov <> None))
    (program_loops prog)

(* --- provenance through the §V transformations --------------------------- *)

let mkpos line col = { Pos.line; col; offset = ((line - 1) * 80) + col }

let mkspan l c0 c1 = { Pos.left = mkpos l c0; Pos.right = mkpos l c1 }

let nest_ij () =
  Ir.For
    (Ir.mk_loop ~prov:(mkspan 3 1 20) ~index:"i" ~bound:(Ir.Int 8)
       [
         Ir.For
           (Ir.mk_loop ~prov:(mkspan 4 1 20) ~index:"j" ~bound:(Ir.Int 8)
              [ Ir.ExprS (Ir.Var "j") ]);
       ])

let apply_ok ts body =
  match T.apply_all ts body with
  | Ok b -> b
  | Error m -> Alcotest.failf "transform failed: %s" m

let test_split_preserves_provenance () =
  let out =
    apply_ok
      [ T.Split { target = "j"; factor = 4; inner = "jin"; outer = "jout" } ]
      [ nest_ij () ]
  in
  let loops = loops_of_stmts [] out in
  Alcotest.(check bool) "split produced more loops" true
    (List.length loops >= 3);
  List.iter
    (fun (l : Ir.loop) ->
      Alcotest.(check bool)
        (Printf.sprintf "loop '%s' kept prov after split" l.Ir.index)
        true (l.Ir.prov <> None))
    loops

let test_tile_preserves_provenance () =
  let out =
    apply_ok
      [ T.Tile { outer_ix = "i"; inner_ix = "j"; size = 4 } ]
      [ nest_ij () ]
  in
  let loops = loops_of_stmts [] out in
  Alcotest.(check bool) "tile produced a deeper nest" true
    (List.length loops >= 4);
  List.iter
    (fun (l : Ir.loop) ->
      Alcotest.(check bool)
        (Printf.sprintf "loop '%s' kept prov after tile" l.Ir.index)
        true (l.Ir.prov <> None))
    loops

(* --- #line directives ----------------------------------------------------- *)

let test_line_directives () =
  let src_lines = List.length (String.split_on_char '\n' eddy_src) in
  let with_lines =
    match Driver.compile_to_c ~line_file:"eddy.mc" all4 eddy_src with
    | Driver.Ok_ c -> c
    | Driver.Failed ds -> Alcotest.failf "emit: %s" (Driver.diags_to_string ds)
  in
  let plain =
    match Driver.compile_to_c all4 eddy_src with
    | Driver.Ok_ c -> c
    | Driver.Failed ds -> Alcotest.failf "emit: %s" (Driver.diags_to_string ds)
  in
  let directives =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | [ "#line"; n; file ] when file = "\"eddy.mc\"" ->
            Some (int_of_string n)
        | _ -> None)
      (String.split_on_char '\n' with_lines)
  in
  Alcotest.(check bool) "several #line directives emitted" true
    (List.length directives > 5);
  (* round-trip: every directive names a real line of the source *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "#line %d within source (%d lines)" n src_lines)
        true
        (n >= 1 && n <= src_lines))
    directives;
  (* the directives point at distinct statements, not all at line 1 *)
  Alcotest.(check bool) "directives cover multiple source lines" true
    (List.length (List.sort_uniq compare directives) > 3);
  Alcotest.(check bool) "no directives without the flag" true
    (not
       (String.fold_left
          (fun (prev, found) c ->
            if found then (c, true)
            else if prev = '#' && c = 'l' then (c, true)
            else (c, false))
          (' ', false) plain
       |> snd))

(* --- Driver.profile coverage and report ----------------------------------- *)

let test_profile_coverage () =
  let outcome, report = Driver.profile ~config:(Driver.config_of_flags ~auto_par:false all4) all4 eddy_src [] in
  (match outcome with
  | Driver.Ok_ _ -> ()
  | Driver.Failed ds -> Alcotest.failf "run: %s" (Driver.diags_to_string ds));
  Alcotest.(check bool) "wall clock advanced" true
    (report.Driver.Profile_report.wall_ns > 0);
  let cov = Driver.Profile_report.coverage report in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.3f >= 0.9" cov)
    true (cov >= 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.3f <= 1.05 (self time cannot exceed wall)" cov)
    true (cov <= 1.05);
  Alcotest.(check bool) "rows recorded" true
    (List.length report.Driver.Profile_report.rows > 3);
  Alcotest.(check bool) "some iterations counted" true
    (List.exists
       (fun (r : P.row) -> r.P.r_iters > 0)
       report.Driver.Profile_report.rows);
  Alcotest.(check bool) "allocation bytes attributed" true
    (List.exists
       (fun (r : P.row) -> r.P.r_alloc_bytes > 0)
       report.Driver.Profile_report.rows);
  Alcotest.(check bool) "allocated_bytes gauge positive" true
    (report.Driver.Profile_report.allocated_bytes > 0);
  Alcotest.(check bool) "folded stacks non-empty" true
    (Driver.Profile_report.folded_lines report <> []);
  (* profiler must be off again after the run *)
  Alcotest.(check bool) "profiler disabled after profile" false
    (P.is_enabled ())

let test_profile_parallel_coverage () =
  Runtime.Pool.with_pool 2 (fun pool ->
      let outcome, report =
        Driver.profile ~config:(Driver.config_of_flags ~auto_par:true all4) ~pool all4 eddy_src []
      in
      (match outcome with
      | Driver.Ok_ _ -> ()
      | Driver.Failed ds ->
          Alcotest.failf "run: %s" (Driver.diags_to_string ds));
      let cov = Driver.Profile_report.coverage report in
      Alcotest.(check bool)
        (Printf.sprintf "parallel coverage %.3f in [0.9, 1.05]" cov)
        true
        (cov >= 0.9 && cov <= 1.05);
      Alcotest.(check bool) "a ParFor dispatched" true
        (List.exists
           (fun (r : P.row) -> r.P.r_dispatches > 0)
           report.Driver.Profile_report.rows))

(* --- RC byte gauges -------------------------------------------------------- *)

let test_rc_peak_bytes_hand_computed () =
  Runtime.Rc.reset ();
  let a = Runtime.Rc.alloc ~bytes:100 () in
  let b = Runtime.Rc.alloc ~bytes:50 () in
  Alcotest.(check int) "live after a+b" 150 (Runtime.Rc.live_bytes ());
  Runtime.Rc.decr_ a;
  (* a freed: live drops to 50, peak stays at 150 *)
  let c = Runtime.Rc.alloc ~bytes:25 () in
  Alcotest.(check int) "live after free(a)+c" 75 (Runtime.Rc.live_bytes ());
  Alcotest.(check int) "peak is the high-water mark" 150
    (Runtime.Rc.peak_bytes ());
  Alcotest.(check int) "total allocated" 175 (Runtime.Rc.allocated_bytes ());
  Runtime.Rc.decr_ b;
  Runtime.Rc.decr_ c;
  Alcotest.(check int) "all freed" 0 (Runtime.Rc.live_bytes ());
  Alcotest.(check int) "peak survives frees" 150 (Runtime.Rc.peak_bytes ());
  Runtime.Rc.reset ();
  Alcotest.(check int) "reset clears peak" 0 (Runtime.Rc.peak_bytes ())

let test_ndarray_alloc_hook () =
  let seen = ref 0 in
  let prev = !Runtime.Ndarray.alloc_hook in
  Runtime.Ndarray.alloc_hook := Some (fun b -> seen := !seen + b);
  Fun.protect
    ~finally:(fun () -> Runtime.Ndarray.alloc_hook := prev)
    (fun () ->
      ignore (Runtime.Ndarray.create Runtime.Ndarray.EFloat [| 10; 10 |]);
      Alcotest.(check int) "hook saw 10*10*4 bytes" 400 !seen)

(* --- caret renderer goldens ------------------------------------------------ *)

let excerpt src span = Fmt.str "%a" (Support.Diag.pp_excerpt src) span

let test_caret_single_line () =
  let src = "int x = 1;\nMatrix float <2> m;\nreturn x;\n" in
  (* span covering "float" on line 2: cols 8-13 (right one past last) *)
  let span = mkspan 2 8 13 in
  Alcotest.(check string) "caret under 'float'"
    "Matrix float <2> m;\n       ^~~~~" (excerpt src span)

let test_caret_multi_line_clamps () =
  let src = "a\nlong line here\nb\n" in
  let span = { Pos.left = mkpos 2 6; right = mkpos 3 2 } in
  Alcotest.(check string) "underline runs to end of first line"
    "long line here\n     ^~~~~~~~~" (excerpt src span)

let test_caret_dummy_span_silent () =
  Alcotest.(check string) "dummy span renders nothing" ""
    (excerpt "int x;\n" Pos.dummy_span)

let test_caret_tab_alignment () =
  let src = "\tint y = z;\n" in
  (* 'z' is at column 10 (tab counts as one column) *)
  let span = mkspan 1 10 11 in
  Alcotest.(check string) "pad echoes the tab" "\tint y = z;\n\t        ^"
    (excerpt src span)

let test_caret_out_of_range_silent () =
  let src = "short\n" in
  Alcotest.(check string) "column past end renders nothing" ""
    (excerpt src (mkspan 1 40 45));
  Alcotest.(check string) "line past end renders nothing" ""
    (excerpt src (mkspan 9 1 3))

(* --- CLI surface ----------------------------------------------------------- *)

let mmc_exe = Filename.concat (Filename.concat ".." "bin") "mmc.exe"

let test_cli_profile_json () =
  if not (Sys.file_exists mmc_exe) then Alcotest.skip ()
  else begin
    let dir = Filename.temp_file "mmcprof" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    let prog = Filename.concat dir "eddy.mc" in
    Out_channel.with_open_text prog (fun oc -> output_string oc eddy_src);
    let out = Filename.concat dir "profile.json" in
    let folded = Filename.concat dir "folded.txt" in
    let cmd =
      Printf.sprintf "%s profile --json --folded %s %s > %s 2> /dev/null"
        (Filename.quote mmc_exe) (Filename.quote folded)
        (Filename.quote prog) (Filename.quote out)
    in
    Alcotest.(check int) "mmc profile exits 0" 0 (Sys.command cmd);
    let j = J.parse_file out in
    (match J.num_field j "coverage" with
    | Some c ->
        Alcotest.(check bool)
          (Printf.sprintf "CLI coverage %.3f >= 0.9" c)
          true (c >= 0.9)
    | None -> Alcotest.fail "profile JSON has no coverage field");
    (match Option.bind (J.field "rows" j) J.arr with
    | Some rows ->
        Alcotest.(check bool) "JSON rows present" true (List.length rows > 3);
        Alcotest.(check bool) "rows carry source excerpts" true
          (List.exists
             (fun r ->
               match Option.bind (J.field "source" r) J.str with
               | Some s -> String.length s > 0
               | None -> false)
             rows)
    | None -> Alcotest.fail "profile JSON has no rows array");
    (match Option.bind (J.field "memory" j) (J.field "peak_bytes") with
    | Some (J.Num b) ->
        Alcotest.(check bool) "peak_bytes positive" true (b > 0.)
    | _ -> Alcotest.fail "profile JSON has no memory.peak_bytes");
    let folded_text = In_channel.with_open_text folded In_channel.input_all in
    Alcotest.(check bool) "folded file has stack lines" true
      (String.length (String.trim folded_text) > 0)
  end

let test_cli_emit_line_directives () =
  if not (Sys.file_exists mmc_exe) then Alcotest.skip ()
  else begin
    let dir = Filename.temp_file "mmcline" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    let prog = Filename.concat dir "eddy.mc" in
    Out_channel.with_open_text prog (fun oc -> output_string oc eddy_src);
    let out = Filename.concat dir "out.c" in
    let cmd =
      Printf.sprintf "%s emit --line-directives %s > %s 2> /dev/null"
        (Filename.quote mmc_exe) (Filename.quote prog) (Filename.quote out)
    in
    Alcotest.(check int) "mmc emit exits 0" 0 (Sys.command cmd);
    let text = In_channel.with_open_text out In_channel.input_all in
    let has_directive =
      List.exists
        (fun l -> String.length l >= 5 && String.sub l 0 5 = "#line")
        (String.split_on_char '\n' text)
    in
    Alcotest.(check bool) "emitted C references the .mc source" true
      (has_directive
      &&
      let needle = Filename.basename prog in
      let n = String.length needle and m = String.length text in
      let rec go i =
        i + n <= m && (String.sub text i n = needle || go (i + 1))
      in
      go 0)
  end

let suite =
  [
    Alcotest.test_case "lowering stamps provenance on every loop" `Quick
      test_lowering_stamps_provenance;
    Alcotest.test_case "auto-par lowering keeps provenance" `Quick
      test_auto_par_keeps_provenance;
    Alcotest.test_case "split preserves provenance" `Quick
      test_split_preserves_provenance;
    Alcotest.test_case "tile preserves provenance" `Quick
      test_tile_preserves_provenance;
    Alcotest.test_case "#line directives round-trip source lines" `Quick
      test_line_directives;
    Alcotest.test_case "profile attributes >=90% of runtime" `Quick
      test_profile_coverage;
    Alcotest.test_case "parallel profile stays within wall time" `Quick
      test_profile_parallel_coverage;
    Alcotest.test_case "rc peak bytes match a hand-computed sequence" `Quick
      test_rc_peak_bytes_hand_computed;
    Alcotest.test_case "ndarray alloc hook reports bytes" `Quick
      test_ndarray_alloc_hook;
    Alcotest.test_case "caret: single-line span" `Quick test_caret_single_line;
    Alcotest.test_case "caret: multi-line span clamps to first line" `Quick
      test_caret_multi_line_clamps;
    Alcotest.test_case "caret: dummy span is silent" `Quick
      test_caret_dummy_span_silent;
    Alcotest.test_case "caret: tab-aligned pad" `Quick
      test_caret_tab_alignment;
    Alcotest.test_case "caret: out-of-range spans are silent" `Quick
      test_caret_out_of_range_silent;
    Alcotest.test_case "cli: mmc profile --json schema + coverage" `Quick
      test_cli_profile_json;
    Alcotest.test_case "cli: mmc emit --line-directives" `Quick
      test_cli_emit_line_directives;
  ]
