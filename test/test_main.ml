let () =
  Alcotest.run "mmc"
    [
      ("regexe", Test_regexe.suite);
      ("grammar", Test_grammar.suite);
      ("runtime", Test_runtime.suite);
      ("cir", Test_cir.suite);
      ("ag", Test_ag.suite);
      ("pipeline", Test_pipeline.suite);
      ("eddy", Test_eddy.suite);
      ("cilk", Test_cilk.suite);
      ("programs", Test_programs.suite);
      ("telemetry", Test_telemetry.suite);
      ("kernels", Test_kernels.suite);
      ("profile", Test_profile.suite);
      ("explain", Test_explain.suite);
      ("golden", Test_golden.suite);
      ("faults", Test_faults.suite);
      ("native", Test_native.suite);
      ("native_profile", Test_native_profile.suite);
      ("native_faults", Test_native_faults.suite);
    ]
