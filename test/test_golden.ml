(* Pipeline-equivalence suite: the staged pass pipeline against the
   blessed pre-refactor oracle under test/golden/ (regenerate with
   golden_gen.ml only when the *intended* output changes), plus the
   pass-manager guarantees the refactor introduced: exactly-once
   lowering, per-pass timing gauges, the --passes reordering payoff, the
   diff-size cap, and the caret-free unknown-pass diagnostics. *)

module R = Support.Remark
module S = Runtime.Scalar

let all4 =
  Driver.compose
    [ Driver.matrix; Driver.transform; Driver.refptr; Driver.cilk ]

let golden_dir = "golden"
let read path = In_channel.with_open_bin path In_channel.input_all

let contains needle hay =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Every fixture stem, from the committed .mc files themselves — a stem
   silently missing from the corpus would hollow the suite out. *)
let stems =
  Sys.readdir golden_dir |> Array.to_list
  |> List.filter_map (Filename.chop_suffix_opt ~suffix:".mc")
  |> List.sort compare

let emit ~auto_par src =
  let config = Driver.config_of_flags ~auto_par all4 in
  match Driver.compile_to_c ~config all4 src with
  | Driver.Ok_ text -> text
  | Driver.Failed ds ->
      Alcotest.failf "emit failed: %s" (Driver.diags_to_string ds)

(* --- emitted C, byte for byte ------------------------------------------- *)

let test_emitted_c_matches_oracle () =
  Alcotest.(check bool) "corpus is non-trivial" true (List.length stems >= 25);
  List.iter
    (fun stem ->
      let src = read (Filename.concat golden_dir (stem ^ ".mc")) in
      List.iter
        (fun (ext, auto_par) ->
          let oracle = read (Filename.concat golden_dir (stem ^ ext)) in
          Alcotest.(check string)
            (Printf.sprintf "%s%s bit-identical" stem ext)
            oracle (emit ~auto_par src))
        [ (".par.c", true); (".seq.c", false) ])
    stems

(* --- interpreter results, byte for byte --------------------------------- *)

let test_run_results_match_oracle () =
  List.iter
    (fun stem ->
      let out = Filename.concat golden_dir (stem ^ ".out") in
      if Sys.file_exists out then
        let src = read (Filename.concat golden_dir (stem ^ ".mc")) in
        let config = Driver.config_of_flags ~auto_par:true all4 in
        match Driver.run ~config all4 src [] with
        | Driver.Ok_ v ->
            Alcotest.(check string)
              (stem ^ ".out bit-identical")
              (read out)
              (Fmt.str "%a" Interp.Eval.pp_value v)
        | Driver.Failed ds ->
            Alcotest.failf "%s: run failed: %s" stem
              (Driver.diags_to_string ds))
    stems

(* --- the blessed explain report ------------------------------------------ *)

let test_explain_report_matches_oracle () =
  let src = read (Filename.concat golden_dir "transform_tiling.mc") in
  match Driver.explain all4 src with
  | Driver.Ok_ _, report ->
      Alcotest.(check string) "default explain bit-identical"
        (read (Filename.concat golden_dir "transform_tiling.explain"))
        (Driver.Explain_report.to_string ~src report)
  | Driver.Failed ds, _ ->
      Alcotest.failf "explain failed: %s" (Driver.diags_to_string ds)

(* --- exactly-once lowering ------------------------------------------------ *)

(* The refactor's headline: explain with every snapshot requested lowers
   once (the old driver re-lowered the program per requested stage), and
   the snapshots do not perturb the remark stream. *)
let test_explain_lowers_exactly_once () =
  let src = read (Filename.concat golden_dir "transform_tiling.mc") in
  let remarks dump_passes =
    let before = !Cminus.Lower.runs in
    match Driver.explain ~dump_passes all4 src with
    | Driver.Ok_ _, report ->
        Alcotest.(check int)
          (Printf.sprintf "dump=%s lowers exactly once"
             (String.concat "," dump_passes))
          1
          (!Cminus.Lower.runs - before);
        report.Driver.Explain_report.remarks
    | Driver.Failed ds, _ ->
        Alcotest.failf "explain failed: %s" (Driver.diags_to_string ds)
  in
  let plain = remarks [] in
  let dumped = remarks [ "all" ] in
  Alcotest.(check int) "same remark count with --dump-ir=all"
    (List.length plain) (List.length dumped);
  List.iter2
    (fun (a : R.t) (b : R.t) ->
      Alcotest.(check string) "same remark text" a.R.message b.R.message;
      Alcotest.(check string) "same pass" a.R.pass b.R.pass)
    plain dumped

(* --- per-pass timing gauges ---------------------------------------------- *)

let test_pass_timing_gauges () =
  Support.Telemetry.reset ();
  Support.Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Support.Telemetry.set_enabled false)
  @@ fun () ->
  let src = read (Filename.concat golden_dir "transform_tiling.mc") in
  (match Driver.run all4 src [] with
  | Driver.Ok_ _ -> ()
  | Driver.Failed ds ->
      Alcotest.failf "run failed: %s" (Driver.diags_to_string ds));
  let gauges = Support.Telemetry.gauges () in
  List.iter
    (fun pass ->
      let name = "pass." ^ pass ^ ".ns" in
      match List.assoc_opt name gauges with
      | Some v ->
          Alcotest.(check bool) (name ^ " is non-negative") true (v >= 0.)
      | None -> Alcotest.failf "gauge %s not exported" name)
    [ "fuse"; "copy-elim"; "auto-par"; "transform"; "rc" ]

(* --- --passes reordering: the payoff -------------------------------------- *)

(* A script that binds the sequential nest but not the auto-parallelized
   one.  Under the default order (auto-par before transform) it
   warn-and-skips; running transform first lets it apply, and auto-par
   still promotes the transformed nest. *)
let reorder_src =
  {|
int main() {
  int m = 8;
  int n = 8;
  Matrix float <2> g = init(Matrix float <2>, m, n);
  g = with ([0,0] <= [i,j] < [m,n]) genarray ([m,n], (float)(i * n + j))
    transform interchange i, j;
  return (int)(with ([0,0] <= [i,j] < [m,n]) fold (+, 0f, g[i, j]));
}
|}

let reordered_config () =
  match
    Driver.Pipeline.of_spec (Driver.default_config all4)
      [ "transform"; "auto-par" ]
  with
  | Ok cfg -> cfg
  | Error bad -> Alcotest.failf "of_spec rejected %S" bad

let count ~pass ~kind remarks = List.length (R.filter ~pass ~kind remarks)

let test_reorder_applies_skipped_script () =
  (* default order, auto-par on: the script cannot bind *)
  (match Driver.explain all4 reorder_src with
  | Driver.Ok_ _, report ->
      let rs = report.Driver.Explain_report.remarks in
      Alcotest.(check int) "default: script skipped" 1
        (count ~pass:"transform" ~kind:R.Skipped rs);
      Alcotest.(check int) "default: nothing applied" 0
        (count ~pass:"transform" ~kind:R.Applied rs)
  | Driver.Failed ds, _ ->
      Alcotest.failf "explain failed: %s" (Driver.diags_to_string ds));
  (* transform first: the same script applies, and auto-par still fires *)
  match Driver.explain ~config:(reordered_config ()) all4 reorder_src with
  | Driver.Ok_ _, report ->
      let rs = report.Driver.Explain_report.remarks in
      Alcotest.(check int) "reordered: script applied" 1
        (count ~pass:"transform" ~kind:R.Applied rs);
      Alcotest.(check int) "reordered: no skip" 0
        (count ~pass:"transform" ~kind:R.Skipped rs);
      Alcotest.(check bool) "reordered: auto-par still promotes" true
        (count ~pass:"auto-par" ~kind:R.Applied rs >= 1)
  | Driver.Failed ds, _ ->
      Alcotest.failf "explain failed: %s" (Driver.diags_to_string ds)

(* Native execution under the reordered pipeline agrees with the
   interpreter bit-for-bit (and its binary occupies its own cache slot —
   the canonical pipeline string is part of the key). *)
let test_reorder_native_matches_interp () =
  (match Native.Toolchain.probe () with
  | Ok _ -> ()
  | Error e ->
      Printf.printf "SKIP: no C compiler (%s)\n%!"
        (Native.Toolchain.describe_error e);
      Alcotest.skip ());
  let config = reordered_config () in
  let iv =
    match Driver.run ~config all4 reorder_src [] with
    | Driver.Ok_ v -> Fmt.str "%a" Interp.Eval.pp_value v
    | Driver.Failed ds ->
        Alcotest.failf "interp failed: %s" (Driver.diags_to_string ds)
  in
  let dir = Filename.temp_file "mmgolden" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  match Driver.exec ~config ~dir ~cache_dir:dir all4 reorder_src with
  | Driver.Ok_ o ->
      Alcotest.(check string) "native value = interp value" iv
        (Fmt.str "%a" Native.Exec.pp_value o.Native.Exec.value)
  | Driver.Failed ds ->
      Alcotest.failf "native failed: %s" (Driver.diags_to_string ds)

(* Differently-ordered pipelines must never share a cached binary even
   when they emit identical C today. *)
let test_cache_key_separates_pipelines () =
  match Native.Toolchain.probe () with
  | Error _ -> Alcotest.skip ()
  | Ok tc ->
      let k p = Native.Cache.key ~toolchain:tc ~pipeline:p "int main(){}" in
      let default_ = Driver.Pipeline.canon (Driver.default_config all4) in
      let reordered = Driver.Pipeline.canon (reordered_config ()) in
      Alcotest.(check bool) "configs render differently" true
        (default_ <> reordered);
      Alcotest.(check bool) "distinct cache keys" true
        (k default_ <> k reordered);
      Alcotest.(check string) "empty pipeline keeps pre-pipeline digests"
        (Native.Cache.key ~toolchain:tc "int main(){}")
        (k "")

(* --- unknown pass names --------------------------------------------------- *)

let test_of_spec_rejects_unknown () =
  (match
     Driver.Pipeline.of_spec (Driver.default_config all4) [ "fuse"; "bogus" ]
   with
  | Error bad -> Alcotest.(check string) "names the culprit" "bogus" bad
  | Ok _ -> Alcotest.fail "of_spec accepted an unknown pass");
  Alcotest.(check (list string)) "known passes, registration order"
    [ "fuse"; "copy-elim"; "auto-par"; "transform" ]
    (Driver.Pipeline.known (Driver.default_config all4))

let mmc_exe = Filename.concat (Filename.concat ".." "bin") "mmc.exe"

let test_cli_unknown_pass_diagnostic () =
  if not (Sys.file_exists mmc_exe) then Alcotest.skip ()
  else begin
    let dir = Filename.temp_file "mmgolden" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    let prog = Filename.concat dir "prog.mc" in
    Out_channel.with_open_text prog (fun oc ->
        output_string oc "int main() { return 0; }\n");
    let err = Filename.concat dir "err.txt" in
    let code =
      Sys.command
        (Printf.sprintf "%s emit --passes fuse,bogus %s > /dev/null 2> %s"
           (Filename.quote mmc_exe) (Filename.quote prog) (Filename.quote err))
    in
    Alcotest.(check int) "exits 2" 2 code;
    let text = In_channel.with_open_text err In_channel.input_all in
    Alcotest.(check bool) "names the unknown pass" true
      (contains "unknown --passes pass \"bogus\"" text);
    Alcotest.(check bool) "lists the known passes" true
      (contains "fuse, copy-elim, auto-par, transform" text);
    Alcotest.(check bool) "no caret art" false (contains "^" text);
    (* --dump-ir typos get the same treatment *)
    let code =
      Sys.command
        (Printf.sprintf "%s explain --dump-ir copyelim %s > /dev/null 2> %s"
           (Filename.quote mmc_exe) (Filename.quote prog) (Filename.quote err))
    in
    Alcotest.(check int) "--dump-ir typo exits 2" 2 code;
    let text = In_channel.with_open_text err In_channel.input_all in
    Alcotest.(check bool) "--dump-ir typo names the pass" true
      (contains "unknown --dump-ir pass \"copyelim\"" text);
    Alcotest.(check bool) "--dump-ir diagnostic is caret-free" false
      (contains "^" text)
  end

(* --- diff-size cap --------------------------------------------------------- *)

let test_ir_diff_cap_falls_back_to_full_dumps () =
  let line i = Printf.sprintf "line %d" i in
  let big n tag =
    String.concat "\n" (List.init n (fun i -> if i = 0 then tag else line i))
  in
  let over = Cir.Snapshot.max_diff_lines + 1 in
  let sink = Cir.Snapshot.create ~passes:[ "lower"; "fuse" ] ~diff:true () in
  Cir.Snapshot.record sink ~pass:"lower" ~label:"program" (big over "a");
  Cir.Snapshot.record sink ~pass:"fuse" ~label:"program" (big over "b");
  let text = Cir.Snapshot.to_string sink in
  Alcotest.(check bool) "visible skip note" true
    (contains
       (Printf.sprintf
          "(diff skipped: snapshot exceeds %d lines; showing both versions \
           in full)"
          Cir.Snapshot.max_diff_lines)
       text);
  Alcotest.(check bool) "before version dumped" true
    (contains "<<< lower" text);
  Alcotest.(check bool) "after version dumped" true (contains ">>> fuse" text);
  (* under the cap the same pair produces a real unified diff *)
  let small = Cir.Snapshot.create ~passes:[ "lower"; "fuse" ] ~diff:true () in
  Cir.Snapshot.record small ~pass:"lower" ~label:"program" (big 10 "a");
  Cir.Snapshot.record small ~pass:"fuse" ~label:"program" (big 10 "b");
  let text = Cir.Snapshot.to_string small in
  Alcotest.(check bool) "small diff has -/+ hunks" true
    (contains "-a" text && contains "+b" text);
  Alcotest.(check bool) "small diff is not a full dump" false
    (contains "diff skipped" text)

let suite =
  [
    Alcotest.test_case "emitted C bit-identical to oracle (corpus)" `Quick
      test_emitted_c_matches_oracle;
    Alcotest.test_case "interpreter results bit-identical to oracle" `Quick
      test_run_results_match_oracle;
    Alcotest.test_case "default explain report bit-identical to oracle" `Quick
      test_explain_report_matches_oracle;
    Alcotest.test_case "explain --dump-ir=all lowers exactly once" `Quick
      test_explain_lowers_exactly_once;
    Alcotest.test_case "pass.<name>.ns gauges exported" `Quick
      test_pass_timing_gauges;
    Alcotest.test_case "--passes transform,auto-par applies skipped script"
      `Quick test_reorder_applies_skipped_script;
    Alcotest.test_case "reordered pipeline: native = interp" `Quick
      test_reorder_native_matches_interp;
    Alcotest.test_case "pipeline string separates cache keys" `Quick
      test_cache_key_separates_pipelines;
    Alcotest.test_case "of_spec rejects unknown passes" `Quick
      test_of_spec_rejects_unknown;
    Alcotest.test_case "cli: unknown --passes diagnostic is caret-free" `Quick
      test_cli_unknown_pass_diagnostic;
    Alcotest.test_case "--ir-diff caps the LCS and dumps both versions" `Quick
      test_ir_diff_cap_falls_back_to_full_dumps;
  ]
