(* Compiler decision tracing: the Support.Remark stream through every
   pipeline decision point, pass-by-pass IR snapshots and diffs, the
   structured transform warn-and-skip path (one source of truth for
   stderr, remarks and JSON), the Driver.explain staging, JSON round-trip
   through Support.Json, the fusion-remark/loop-count property, and the
   `mmc explain` / `--remarks` CLI surfaces. *)

module Ir = Cir.Ir
module R = Support.Remark
module J = Support.Json
module Pos = Support.Pos
module Diag = Support.Diag

let all4 =
  Driver.compose
    [ Driver.matrix; Driver.transform; Driver.refptr; Driver.cilk ]

(* Self-contained kernel (no readMatrix) touching fuse, copy-elim (both
   the AST-level dead-slice rewrite and the identity-slice alias),
   auto-par, rc and transform — the .mc twin ships as
   examples/transform_tiling.mc. *)
let tiling_src =
  {|
float rowMean(Matrix float <2> grid, int i) {
  Matrix float <1> row = grid[i, :];
  int n = dimSize(row, 0);
  float total = with ([0] <= [k] < [n]) fold (+, 0f, row[k]);
  return total / n;
}

int main() {
  int m = 16;
  int n = 16;
  Matrix float <2> grid = init(Matrix float <2>, m, n);
  grid = with ([0,0] <= [i,j] < [m,n]) genarray ([m,n], 0.5f);
  Matrix float <2> scaled = init(Matrix float <2>, m, n);
  scaled = with ([0,0] <= [i,j] < [m,n]) genarray ([m,n], grid[i, j] + 1f)
    transform split j by 4, jin, jout.
              interchange jout, jin;
  Matrix float <2> view = scaled[:, :];
  float total = with ([0,0] <= [i,j] < [m,n]) fold (+, 0f, view[i, j]);
  Matrix float <1> means = init(Matrix float <1>, m);
  means = with ([0] <= [i] < [m]) genarray ([m], rowMean(grid, i));
  return (int)(total + means[0]);
}
|}

(* A script that binds against the sequential nest but not the
   auto-parallelized one: interchange needs both i and j as plain For
   loops, and auto-par promotes i to ParFor. *)
let skip_src =
  Eddy.Programs.fig9_with_script "interchange i, j"

let explain ?fuse ?copy_elim ?(auto_par = true) ?dump_passes ?ir_diff ?warn src
    =
  let config = Driver.config_of_flags ?fuse ?copy_elim ~auto_par all4 in
  Driver.explain ~config ?dump_passes ?ir_diff ?warn all4 src

let explain_ok ?fuse ?copy_elim ?auto_par ?dump_passes ?ir_diff ?warn src =
  match explain ?fuse ?copy_elim ?auto_par ?dump_passes ?ir_diff ?warn src with
  | Driver.Ok_ _, report -> report
  | Driver.Failed ds, _ ->
      Alcotest.failf "explain failed: %s" (Driver.diags_to_string ds)

let count ?pass ?kind (report : Driver.Explain_report.t) =
  List.length (R.filter ?pass ?kind report.Driver.Explain_report.remarks)

(* --- golden remark tables ------------------------------------------------- *)

(* fig1 under the parallel config: both genarray nests promoted, the
   inner fold demoted with its blocking construct named, rc active. *)
let test_fig1_parallel_remarks () =
  let src = Eddy.Programs.fig1_temporal_mean in
  let report = explain_ok ~auto_par:true src in
  Alcotest.(check bool) "fusion fired" true (count ~pass:"fuse" ~kind:R.Applied report >= 1);
  Alcotest.(check bool) "genarray promoted" true
    (count ~pass:"auto-par" ~kind:R.Applied report >= 1);
  Alcotest.(check bool) "fold demoted" true
    (count ~pass:"auto-par" ~kind:R.Missed report >= 1);
  Alcotest.(check bool) "rc reported" true (count ~pass:"rc" report >= 1);
  (* the demotion names its blocking construct *)
  let demoted =
    R.filter ~pass:"auto-par" ~kind:R.Missed report.Driver.Explain_report.remarks
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "demotion carries a reason detail" true
        (List.mem_assoc "demoted" r.R.details))
    demoted;
  (* sequential config reports the same decision points as skips *)
  let seq = explain_ok ~auto_par:false src in
  Alcotest.(check int) "no promotions under --seq" 0
    (count ~pass:"auto-par" ~kind:R.Applied seq);
  Alcotest.(check bool) "skips under --seq" true
    (count ~pass:"auto-par" ~kind:R.Skipped seq >= 1)

let test_fig4_remarks () =
  let src = Eddy.Programs.fig4_conncomp in
  let report = explain_ok ~auto_par:true src in
  (* matrixMap promotion is fig4's headline decision *)
  let promoted =
    R.filter ~pass:"auto-par" ~kind:R.Applied report.Driver.Explain_report.remarks
  in
  Alcotest.(check bool) "matrixMap slice dispatch promoted" true
    (List.exists
       (fun r ->
         let n = String.length "matrixMap" and m = String.length r.R.message in
         let rec go i =
           i + n <= m && (String.sub r.R.message i n = "matrixMap" || go (i + 1))
         in
         go 0)
       promoted);
  Alcotest.(check bool) "rc reports every function" true
    (count ~pass:"rc" report >= 2)

let test_transform_remarks_applied () =
  let report = explain_ok ~auto_par:false tiling_src in
  let applied =
    R.filter ~pass:"transform" ~kind:R.Applied report.Driver.Explain_report.remarks
  in
  Alcotest.(check int) "one remark per applied clause" 2 (List.length applied);
  (* clause text is carried as a detail, in script order *)
  Alcotest.(check (list string)) "clauses in script order"
    [ "split j by 4, jin, jout"; "interchange jout jin" ]
    (List.map (fun r -> List.assoc "clause" r.R.details) applied);
  Alcotest.(check bool) "copy-elim fired at the AST level" true
    (count ~pass:"copy-elim" ~kind:R.Applied report >= 1)

(* Every remark for these programs points at real source: the caret
   excerpt must render non-empty. *)
let test_remarks_carry_caret_spans () =
  List.iter
    (fun (name, src) ->
      let report = explain_ok ~auto_par:true src in
      Alcotest.(check bool)
        (Printf.sprintf "%s produces remarks" name)
        true
        (report.Driver.Explain_report.remarks <> []);
      List.iter
        (fun r ->
          let excerpt = Fmt.str "%a" (Diag.pp_excerpt src) r.R.span in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s remark at %s renders an excerpt" name
               r.R.pass (Pos.span_to_string r.R.span))
            true
            (String.length excerpt > 0))
        report.Driver.Explain_report.remarks)
    [
      ("fig1", Eddy.Programs.fig1_temporal_mean);
      ("fig4", Eddy.Programs.fig4_conncomp);
      ("tiling", tiling_src);
    ]

(* Rendering is deterministic: same program, same table. *)
let test_remark_table_stable () =
  let render () =
    Driver.Explain_report.to_string ~src:tiling_src
      (explain_ok ~auto_par:true tiling_src)
  in
  Alcotest.(check string) "two runs render identically" (render ()) (render ());
  (* grouped by pass in pipeline order *)
  let text = render () in
  let idx needle =
    let n = String.length needle and m = String.length text in
    let rec go i = if i + n > m then -1 else if String.sub text i n = needle then i else go (i + 1) in
    go 0
  in
  let pf = idx "pass fuse:" and pc = idx "pass copy-elim:" and pa = idx "pass auto-par:" in
  let pr = idx "pass rc:" and pt = idx "pass transform:" in
  Alcotest.(check bool) "all five groups present" true
    (pf >= 0 && pc >= 0 && pa >= 0 && pr >= 0 && pt >= 0);
  Alcotest.(check bool) "groups in pipeline order" true
    (pf < pc && pc < pa && pa < pr && pr < pt)

(* --- structured warn-and-skip (single source of truth) -------------------- *)

let test_skip_shared_between_stderr_and_remarks () =
  let warned = ref [] in
  let report =
    explain_ok ~auto_par:true ~warn:(fun d -> warned := d :: !warned) skip_src
  in
  let skipped =
    R.filter ~pass:"transform" ~kind:R.Skipped report.Driver.Explain_report.remarks
  in
  Alcotest.(check int) "exactly one skip remark" 1 (List.length skipped);
  let r = List.hd skipped in
  (match !warned with
  | [ d ] ->
      Alcotest.(check string) "stderr text is the remark text" r.R.message
        d.Diag.message;
      Alcotest.(check string) "same phase" "transform" d.Diag.phase;
      Alcotest.(check bool) "same span" true (d.Diag.span = r.R.span);
      (match d.Diag.severity with
      | Diag.Warning -> ()
      | _ -> Alcotest.fail "skip must surface as a warning")
  | ds -> Alcotest.failf "expected exactly one warning, got %d" (List.length ds));
  (* the raw script error rides along as a detail for --json consumers *)
  Alcotest.(check bool) "error detail present" true
    (List.mem_assoc "error" r.R.details);
  (* under the sequential config the same script binds and applies *)
  let seq = explain_ok ~auto_par:false skip_src in
  Alcotest.(check int) "no skip when the script binds" 0
    (count ~pass:"transform" ~kind:R.Skipped seq);
  Alcotest.(check bool) "applied instead" true
    (count ~pass:"transform" ~kind:R.Applied seq >= 1)

(* --- JSON round-trip ------------------------------------------------------ *)

let test_json_round_trip () =
  let report = explain_ok ~auto_par:true tiling_src in
  let j = J.parse (Driver.Explain_report.to_json report) in
  let remarks =
    match Option.bind (J.field "remarks" j) J.arr with
    | Some rs -> rs
    | None -> Alcotest.fail "no remarks array"
  in
  Alcotest.(check int) "every remark serialized"
    (List.length report.Driver.Explain_report.remarks)
    (List.length remarks);
  List.iter2
    (fun (r : R.t) jr ->
      Alcotest.(check (option string)) "pass" (Some r.R.pass)
        (Option.bind (J.field "pass" jr) J.str);
      Alcotest.(check (option string)) "kind"
        (Some (R.kind_to_string r.R.kind))
        (Option.bind (J.field "kind" jr) J.str);
      Alcotest.(check (option string)) "message" (Some r.R.message)
        (Option.bind (J.field "message" jr) J.str);
      let span = Option.get (J.field "span" jr) in
      Alcotest.(check (option (float 0.))) "span line"
        (Some (float_of_int r.R.span.Pos.left.Pos.line))
        (J.num_field span "line"))
    report.Driver.Explain_report.remarks remarks;
  (* counts object agrees with the remark list *)
  let counts = Option.get (J.field "counts" j) in
  List.iter
    (fun pass ->
      let expect kind k =
        let got =
          Option.bind (J.field pass counts) (fun o -> J.num_field o k)
        in
        Alcotest.(check (option (float 0.)))
          (Printf.sprintf "counts.%s.%s" pass k)
          (Some (float_of_int (count ~pass ~kind report)))
          got
      in
      expect R.Applied "applied";
      expect R.Missed "missed";
      expect R.Skipped "skipped")
    [ "fuse"; "copy-elim"; "auto-par"; "rc"; "transform" ]

(* --- fusion remarks vs. loop counts (property) ---------------------------- *)

let rec loops_of_stmts acc stmts = List.fold_left loops_of_stmt acc stmts

and loops_of_stmt acc s =
  match s with
  | Ir.For l | Ir.ParFor l -> loops_of_stmts (l :: acc) l.Ir.body
  | Ir.If (_, a, b) -> loops_of_stmts (loops_of_stmts acc a) b
  | Ir.While (_, b) | Ir.Block b | Ir.Located (_, b) -> loops_of_stmts acc b
  | _ -> acc

let program_loops (p : Ir.program) =
  List.concat_map (fun f -> loops_of_stmts [] f.Ir.f_body) p.Ir.funcs

(* Each Applied fusion remark is a with-loop that skipped its
   library-style result copy — exactly one flat copy loop that the
   unfused lowering pays.  So #loops(no-fuse) − #loops(fuse) must equal
   the Applied count, on every program in the corpus. *)
let test_fusion_remarks_match_loop_counts () =
  let corpus =
    [
      ("fig1", Eddy.Programs.fig1_temporal_mean);
      ("fig4", Eddy.Programs.fig4_conncomp);
      ("fig1-slice-copy", Eddy.Programs.fig1_with_slice_copy);
      ("tiling", tiling_src);
      ("fig9-split", Eddy.Programs.fig9_with_script "split j by 4, jin, jout");
    ]
  in
  List.iter
    (fun (name, src) ->
      let lower ~fuse =
        match explain ~fuse ~auto_par:false src with
        | Driver.Ok_ prog, report -> (prog, report)
        | Driver.Failed ds, _ ->
            Alcotest.failf "%s: explain failed: %s" name
              (Driver.diags_to_string ds)
      in
      let fused, report = lower ~fuse:true in
      let unfused, _ = lower ~fuse:false in
      let applied = count ~pass:"fuse" ~kind:R.Applied report in
      Alcotest.(check int)
        (Printf.sprintf "%s: applied fusion remarks = loops saved" name)
        applied
        (List.length (program_loops unfused) - List.length (program_loops fused)))
    corpus

let test_fusion_property_random_shapes =
  QCheck.Test.make ~count:20 ~name:"fusion remark count equals loops saved"
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (a, b) ->
      (* a genarray chain of length [a] plus [b] independent with-loops:
         every one is fusible, so applied = a + b and the unfused
         lowering pays exactly that many copy loops *)
      let buf = Buffer.create 256 in
      Buffer.add_string buf "int main() {\n  int n = 8;\n";
      Buffer.add_string buf
        "  Matrix int <1> v = init(Matrix int <1>, n);\n";
      for _ = 1 to a do
        Buffer.add_string buf
          "  v = with ([0] <= [i] < [n]) genarray ([n], i + 1);\n"
      done;
      for k = 1 to b do
        Buffer.add_string buf
          (Printf.sprintf
             "  Matrix int <1> w%d = init(Matrix int <1>, n);\n\
             \  w%d = with ([0] <= [i] < [n]) genarray ([n], i * 2);\n"
             k k)
      done;
      Buffer.add_string buf "  return v[0];\n}\n";
      let src = Buffer.contents buf in
      let lower ~fuse =
        match explain ~fuse ~auto_par:false src with
        | Driver.Ok_ prog, report -> (prog, report)
        | Driver.Failed ds, _ ->
            QCheck.Test.fail_reportf "lower failed: %s"
              (Driver.diags_to_string ds)
      in
      let fused, report = lower ~fuse:true in
      let unfused, _ = lower ~fuse:false in
      count ~pass:"fuse" ~kind:R.Applied report
      = List.length (program_loops unfused) - List.length (program_loops fused))
  |> QCheck_alcotest.to_alcotest

(* --- IR snapshots --------------------------------------------------------- *)

let test_dump_ir_stages () =
  let report =
    explain_ok ~auto_par:true
      ~dump_passes:[ "lower"; "fuse"; "copy-elim"; "auto-par"; "transform" ]
      tiling_src
  in
  let dump = report.Driver.Explain_report.dump in
  List.iter
    (fun header ->
      let n = String.length header and m = String.length dump in
      let rec go i = i + n <= m && (String.sub dump i n = header || go (i + 1)) in
      Alcotest.(check bool) (Printf.sprintf "dump has %S" header) true (go 0))
    [
      "=== ir after lower (program) ===";
      "=== ir after fuse (program) ===";
      "=== ir after copy-elim (program) ===";
      "=== ir after auto-par (program) ===";
      (* per-clause transform snapshots are labelled by statement span *)
      "=== ir after transform (";
    ]

let test_ir_diff_marks_promotion () =
  let report =
    explain_ok ~auto_par:true ~dump_passes:[ "copy-elim"; "auto-par" ]
      ~ir_diff:true tiling_src
  in
  let dump = report.Driver.Explain_report.dump in
  let contains needle =
    let n = String.length needle and m = String.length dump in
    let rec go i = i + n <= m && (String.sub dump i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "diff header present" true
    (contains "--- copy-elim\n+++ auto-par");
  Alcotest.(check bool) "promotion shows as an added pragma" true
    (contains "+  #pragma omp parallel for")

(* --- CLI surface ---------------------------------------------------------- *)

let mmc_exe = Filename.concat (Filename.concat ".." "bin") "mmc.exe"

let with_prog src k =
  let dir = Filename.temp_file "mmcexplain" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let prog = Filename.concat dir "prog.mc" in
  Out_channel.with_open_text prog (fun oc -> output_string oc src);
  k dir prog

let test_cli_explain_json () =
  if not (Sys.file_exists mmc_exe) then Alcotest.skip ()
  else
    with_prog tiling_src @@ fun dir prog ->
    let out = Filename.concat dir "explain.json" in
    let cmd =
      Printf.sprintf "%s explain --json %s > %s 2> /dev/null"
        (Filename.quote mmc_exe) (Filename.quote prog) (Filename.quote out)
    in
    Alcotest.(check int) "mmc explain exits 0" 0 (Sys.command cmd);
    let j = J.parse_file out in
    (match Option.bind (J.field "remarks" j) J.arr with
    | Some rs ->
        Alcotest.(check bool) "remarks present" true (List.length rs >= 5)
    | None -> Alcotest.fail "explain JSON has no remarks array");
    let counts = Option.get (J.field "counts" j) in
    List.iter
      (fun pass ->
        match J.field pass counts with
        | Some _ -> ()
        | None -> Alcotest.failf "counts lacks pass %s" pass)
      [ "fuse"; "copy-elim"; "auto-par"; "rc"; "transform" ]

let test_cli_explain_only_filter () =
  if not (Sys.file_exists mmc_exe) then Alcotest.skip ()
  else
    with_prog tiling_src @@ fun dir prog ->
    let out = Filename.concat dir "filtered.json" in
    let cmd =
      Printf.sprintf
        "%s explain --json --only pass=rc --only kind=applied %s > %s 2> /dev/null"
        (Filename.quote mmc_exe) (Filename.quote prog) (Filename.quote out)
    in
    Alcotest.(check int) "mmc explain --only exits 0" 0 (Sys.command cmd);
    let j = J.parse_file out in
    (match Option.bind (J.field "remarks" j) J.arr with
    | Some rs ->
        List.iter
          (fun r ->
            Alcotest.(check (option string)) "only rc" (Some "rc")
              (Option.bind (J.field "pass" r) J.str);
            Alcotest.(check (option string)) "only applied" (Some "applied")
              (Option.bind (J.field "kind" r) J.str))
          rs;
        Alcotest.(check bool) "filter kept something" true (rs <> [])
    | None -> Alcotest.fail "filtered JSON has no remarks array")

(* Satellite: no subcommand may drop a lowering warning.  The transform
   warn-and-skip fires under auto-par on every path that lowers. *)
let test_cli_warning_reaches_stderr () =
  if not (Sys.file_exists mmc_exe) then Alcotest.skip ()
  else
    with_prog skip_src @@ fun dir prog ->
    List.iter
      (fun (name, args) ->
        let err = Filename.concat dir (name ^ ".err") in
        let cmd =
          Printf.sprintf "%s %s %s > /dev/null 2> %s" (Filename.quote mmc_exe)
            args (Filename.quote prog) (Filename.quote err)
        in
        ignore (Sys.command cmd);
        let text = In_channel.with_open_text err In_channel.input_all in
        let needle = "transformation script skipped" in
        let n = String.length needle and m = String.length text in
        let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
        Alcotest.(check bool)
          (Printf.sprintf "mmc %s surfaces the skip warning" name)
          true (go 0))
      [
        ("check", "check --auto-par");
        ("emit", "emit --auto-par");
        ("run", "run --threads 2 --data-dir .");
        ("profile", "profile --threads 2 --data-dir .");
        ("explain", "explain");
      ]

let suite =
  [
    Alcotest.test_case "fig1: parallel and sequential remark tables" `Quick
      test_fig1_parallel_remarks;
    Alcotest.test_case "fig4: matrixMap promotion and rc remarks" `Quick
      test_fig4_remarks;
    Alcotest.test_case "transform: one applied remark per clause" `Quick
      test_transform_remarks_applied;
    Alcotest.test_case "every remark renders a caret excerpt" `Quick
      test_remarks_carry_caret_spans;
    Alcotest.test_case "remark table is stable and pipeline-ordered" `Quick
      test_remark_table_stable;
    Alcotest.test_case "warn-and-skip: stderr, remark and JSON share one text"
      `Quick test_skip_shared_between_stderr_and_remarks;
    Alcotest.test_case "explain JSON round-trips through Support.Json" `Quick
      test_json_round_trip;
    Alcotest.test_case "applied fusion remarks = loop nests saved (corpus)"
      `Quick test_fusion_remarks_match_loop_counts;
    test_fusion_property_random_shapes;
    Alcotest.test_case "--dump-ir captures every staged pass" `Quick
      test_dump_ir_stages;
    Alcotest.test_case "--ir-diff shows the auto-par promotion" `Quick
      test_ir_diff_marks_promotion;
    Alcotest.test_case "cli: mmc explain --json schema" `Quick
      test_cli_explain_json;
    Alcotest.test_case "cli: mmc explain --only filters" `Quick
      test_cli_explain_only_filter;
    Alcotest.test_case "cli: lowering warnings reach stderr on every subcommand"
      `Quick test_cli_warning_reaches_stderr;
  ]
