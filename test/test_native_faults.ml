(* Supervised native execution: crash triage to source spans, emitted-C
   runtime guards, MM_FAILPOINTS parity with the interpreter's failpoint
   registry, supervisor deadline kills, sanitizer builds, and the native
   fault matrix — the PR-4 chaos matrix re-run against `mmc exec`.

   Cases needing a real C compiler probe first and skip visibly when
   none is installed; everything heavy runs under a hard SIGALRM
   deadline so a supervision bug fails the test instead of wedging the
   suite. *)

module Nd = Runtime.Ndarray
module T = Support.Telemetry

let nd = Alcotest.testable Nd.pp Nd.equal

let full = Driver.compose [ Driver.matrix; Driver.transform; Driver.refptr ]

exception Deadline of string

let with_deadline ?(secs = 120) label f =
  let old =
    Sys.signal Sys.sigalrm
      (Sys.Signal_handle (fun _ -> raise (Deadline label)))
  in
  ignore (Unix.alarm secs);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm old)
    f

let with_telemetry f =
  T.reset ();
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
    f

let fresh_dir () =
  let d = Filename.temp_file "mmnfault" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

(* One binary cache for the whole suite: the fault matrix reuses two
   compiles (guards off/on) across its sixteen cells. *)
let suite_cache = lazy (fresh_dir ())

let ensure_cc () =
  match Native.Toolchain.probe () with
  | Ok tc -> tc
  | Error e ->
      Printf.printf "SKIP: no C compiler (%s)\n%!"
        (Native.Toolchain.describe_error e);
      Alcotest.skip ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let failed_text ~src = function
  | Driver.Ok_ _ -> Alcotest.fail "expected a failure diagnostic"
  | Driver.Failed ds -> Driver.diags_to_string ~src ds

(* --- satellite: signal-death decoding is a pure function ----------------- *)

let test_describe_signal_exit () =
  (* A 128+N exit status (the child's shell-style report of a signal
     death the supervisor did not witness directly) must decode to the
     signal, never surface as a bare "exit code 139". *)
  let msg =
    Native.Exec.describe_error
      (Native.Exec.Run_failed { exit_code = 139; stderr_text = "" })
  in
  Alcotest.(check bool)
    (Printf.sprintf "139 decodes to signal 11 (got: %s)" msg)
    true
    (contains msg "killed by signal 11");
  Alcotest.(check bool) "no raw exit code in the message" false
    (contains msg "exit code");
  (* the last stderr line rides along when there is one *)
  let msg =
    Native.Exec.describe_error
      (Native.Exec.Run_failed
         { exit_code = 134; stderr_text = "noise\nfree(): invalid pointer\n" })
  in
  Alcotest.(check bool)
    (Printf.sprintf "stderr tail attached (got: %s)" msg)
    true
    (contains msg "killed by signal 6" && contains msg "free(): invalid pointer");
  (* plain nonzero exits keep the existing mm_fatal taxonomy: stderr text
     verbatim when present, the code otherwise *)
  let msg =
    Native.Exec.describe_error
      (Native.Exec.Run_failed { exit_code = 70; stderr_text = "mm_runtime: boom\n" })
  in
  Alcotest.(check string) "mm_fatal stderr preserved" "mm_runtime: boom" msg

(* --- satellite: result-protocol parser is total --------------------------- *)

let test_parse_output_total () =
  let bad text =
    match Native.Exec.parse_output text with
    | Ok _ -> Alcotest.failf "parsed %S" text
    | Error (Native.Exec.Bad_output { message; offset }) -> (message, offset)
    | Error e ->
        Alcotest.failf "unexpected error class for %S: %s" text
          (Native.Exec.describe_error e)
  in
  (* truncated result line *)
  let m, off = bad "__mm_result\n" in
  Alcotest.(check bool) ("truncated line named: " ^ m) true
    (contains m "truncated");
  Alcotest.(check (option int)) "offset at line start" (Some 0) off;
  (* matrix header with missing extents *)
  let m, _ = bad "__mm_result mat f 2 3\n__mm_data 0 0 0\n" in
  Alcotest.(check bool) ("rank/extent mismatch named: " ^ m) true
    (contains m "rank");
  (* output ends mid-tuple *)
  let m, _ = bad "__mm_result tuple 2\n__mm_result int 1\n" in
  Alcotest.(check bool) ("mid-result end named: " ^ m) true
    (contains m "ended mid-result");
  (* corrupt tuple arity cannot allocate before erroring *)
  let m, _ = bad "__mm_result tuple 99999999\n" in
  Alcotest.(check bool) ("arity ceiling named: " ^ m) true
    (contains m "arity");
  (* the offending line's byte offset is reported, not just the first *)
  let _, off = bad "__mm_result int 7\n__mm_livex\n" in
  Alcotest.(check bool) "offset points past the first line" true
    (match off with Some o -> o > 0 | None -> false);
  (* garbage that is not protocol at all *)
  let m, _ = bad "Segmentation fault\n" in
  Alcotest.(check bool) ("no-protocol case named: " ^ m) true
    (contains m "no __mm_result")

let test_span_string_roundtrip () =
  List.iter
    (fun s ->
      match Native.Exec.parse_span_string s with
      | None -> Alcotest.failf "span %S did not parse" s
      | Some sp ->
          Alcotest.(check string) ("roundtrip " ^ s) s
            (Support.Pos.span_to_string sp))
    [ "3:3-45"; "2:3-4:41"; "1:1-2" ];
  List.iter
    (fun s ->
      if Native.Exec.parse_span_string s <> None then
        Alcotest.failf "bogus span %S parsed" s)
    [ "-"; "x"; "0:1-2"; "3:3"; "a:b-c" ]

(* --- guard faults render carets ------------------------------------------ *)

let oob_src =
  {|int main() {
  Matrix int <1> v = init(Matrix int <1>, 4);
  for (int i = 0; i < 10; i++) { v[i] = i; }
  return v[0];
}
|}

let test_guard_oob_caret () =
  with_deadline "guard oob" @@ fun () ->
  ignore (ensure_cc ());
  let outcome =
    Driver.exec ~dir:(fresh_dir ()) ~cache_dir:(Lazy.force suite_cache)
      ~guards:true full oob_src
  in
  let text = failed_text ~src:oob_src outcome in
  Alcotest.(check bool)
    (Printf.sprintf "names the out-of-bounds subscript (got: %s)" text)
    true
    (contains text "out of bounds");
  Alcotest.(check bool)
    (Printf.sprintf "caret excerpt at the faulting loop (got: %s)" text)
    true
    (contains text "for (int i = 0; i < 10; i++)" && contains text "^");
  Alcotest.(check bool) "no raw exit code" false (contains text "exit code")

(* Unguarded, the same out-of-bounds write is undefined behaviour — the
   only guarantee is that whatever happens comes back structured (a
   value, or a diagnostic), never an OCaml exception. *)
let test_oob_unguarded_structured () =
  with_deadline "oob unguarded" @@ fun () ->
  ignore (ensure_cc ());
  match
    Driver.exec ~dir:(fresh_dir ()) ~cache_dir:(Lazy.force suite_cache) full
      oob_src
  with
  | Driver.Ok_ _ -> ()
  | Driver.Failed (d :: _) ->
      Alcotest.(check bool) "error severity" true
        (d.Support.Diag.severity = Support.Diag.Error)
  | Driver.Failed [] -> Alcotest.fail "failed without diagnostics"

(* --- native failpoints ---------------------------------------------------- *)

let genarray_src =
  {|float main() {
  Matrix float <3> g =
    with ([0,0,0] <= [i,j,k] < [3,4,5])
    genarray([3,4,5], (i + j + k) / 4.0);
  return with ([0,0,0] <= [i,j,k] < [3,4,5]) fold (+, 0.0, g[i,j,k]);
}
|}

let test_failpoint_alloc_diag () =
  with_deadline "native.alloc failpoint" @@ fun () ->
  ignore (ensure_cc ());
  let outcome =
    Driver.exec ~dir:(fresh_dir ()) ~cache_dir:(Lazy.force suite_cache)
      ~failpoints:"native.alloc@1" full genarray_src
  in
  let text = failed_text ~src:genarray_src outcome in
  Alcotest.(check bool)
    (Printf.sprintf "names the failpoint (got: %s)" text)
    true
    (contains text "injected fault at failpoint native.alloc");
  Alcotest.(check bool) "no raw exit code" false (contains text "exit code")

let test_failpoint_crash_span_with_guards () =
  (* Under --guards the crash breadcrumbs attribute even an abort() from
     a failpoint to the enclosing source statement: the diagnostic must
     carry a caret excerpt, not anchor at the dummy span. *)
  with_deadline "failpoint crash span" @@ fun () ->
  ignore (ensure_cc ());
  let outcome =
    Driver.exec ~dir:(fresh_dir ()) ~cache_dir:(Lazy.force suite_cache)
      ~guards:true ~failpoints:"native.alloc@1" full genarray_src
  in
  let text = failed_text ~src:genarray_src outcome in
  Alcotest.(check bool)
    (Printf.sprintf "failpoint named with caret (got: %s)" text)
    true
    (contains text "injected fault at failpoint native.alloc"
    && contains text "^")

let test_failpoint_read_matrix_diag () =
  with_deadline "native.io.read_matrix failpoint" @@ fun () ->
  ignore (ensure_cc ());
  let dir = fresh_dir () in
  let cube =
    Nd.init_float [| 2; 3; 4 |] (fun ix ->
        float_of_int ((ix.(0) * 5) + ix.(1) + ix.(2)))
  in
  Interp.Eval.provide_input ~dir "ssh.data" cube;
  let src = Eddy.Programs.fig1_temporal_mean in
  let outcome =
    Driver.exec ~dir ~cache_dir:(Lazy.force suite_cache)
      ~failpoints:"native.io.read_matrix@1" full src
  in
  let text = failed_text ~src outcome in
  Alcotest.(check bool)
    (Printf.sprintf "names the failpoint (got: %s)" text)
    true
    (contains text "injected fault at failpoint native.io.read_matrix")

(* --- supervisor deadline kill --------------------------------------------- *)

(* Two billion serially-dependent float adds: -O2 cannot fold them away
   (floating point is not associative without -ffast-math), so the
   binary genuinely spins until the supervisor kills it. *)
let spin_src =
  {|float main() {
  float acc = 0.0;
  for (int i = 0; i < 2000000000; i++) { acc = acc + 1.0; }
  return acc;
}
|}

let test_supervisor_timeout_kill () =
  with_deadline ~secs:60 "supervisor timeout" @@ fun () ->
  ignore (ensure_cc ());
  let t0 = Unix.gettimeofday () in
  let outcome =
    Driver.exec ~dir:(fresh_dir ()) ~cache_dir:(Lazy.force suite_cache)
      ~timeout_s:0.5 full spin_src
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let text = failed_text ~src:spin_src outcome in
  Alcotest.(check bool)
    (Printf.sprintf "names the --timeout deadline (got: %s)" text)
    true
    (contains text "--timeout");
  Alcotest.(check bool) "no raw exit code" false (contains text "exit code");
  (* deadline + SIGTERM grace + compile slack, not the loop's minutes *)
  Alcotest.(check bool)
    (Printf.sprintf "killed promptly (%.1fs)" elapsed)
    true (elapsed < 30.)

let test_timeout_telemetry () =
  with_deadline ~secs:60 "timeout telemetry" @@ fun () ->
  ignore (ensure_cc ());
  with_telemetry @@ fun () ->
  (match
     Driver.exec ~dir:(fresh_dir ()) ~cache_dir:(Lazy.force suite_cache)
       ~timeout_s:0.5 full spin_src
   with
  | Driver.Ok_ _ -> Alcotest.fail "expected a timeout failure"
  | Driver.Failed _ -> ());
  match List.assoc_opt "native.timeout" (T.gauges ()) with
  | Some v when v >= 1. -> ()
  | v ->
      Alcotest.failf "native.timeout gauge: %s"
        (match v with None -> "absent" | Some f -> string_of_float f)

(* --- sanitizer builds ------------------------------------------------------ *)

let test_sanitized_corpus_runs () =
  with_deadline ~secs:300 "sanitized runs" @@ fun () ->
  ignore (ensure_cc ());
  let iv =
    match Driver.run full genarray_src [] with
    | Driver.Ok_ (Interp.Eval.VScal v) -> v
    | Driver.Ok_ _ -> Alcotest.fail "interp returned a non-scalar"
    | Driver.Failed ds ->
        Alcotest.failf "interp failed: %s" (Driver.diags_to_string ds)
  in
  List.iter
    (fun mode ->
      match Native.Toolchain.probe ~sanitize:mode () with
      | Error (Native.Toolchain.Sanitizer_unsupported _ as e) ->
          (* visible skip, not silence: the toolchain genuinely lacks it *)
          Printf.printf "SKIP: %s\n%!" (Native.Toolchain.describe_error e)
      | Error e ->
          Alcotest.failf "probe failed: %s" (Native.Toolchain.describe_error e)
      | Ok _ -> (
          match
            Driver.exec ~dir:(fresh_dir ()) ~cache_dir:(Lazy.force suite_cache)
              ~sanitize:mode full genarray_src
          with
          | Driver.Failed ds ->
              Alcotest.failf "-fsanitize=%s run failed: %s" mode
                (Driver.diags_to_string ds)
          | Driver.Ok_ o ->
              (* sanitized binaries occupy their own cache slot: this is
                 the first sanitized build of this program, so it cannot
                 have hit the unsanitized entry *)
              Alcotest.(check bool)
                (mode ^ ": distinct cache slot")
                false o.Native.Exec.from_cache;
              Alcotest.(check bool)
                (mode ^ ": result matches the interpreter")
                true
                (o.Native.Exec.value = Native.Exec.RScal iv)))
    [ "address"; "undefined" ]

(* --- guards emission is warning-clean -------------------------------------- *)

let test_guarded_corpus_werror () =
  with_deadline ~secs:300 "guarded corpus -Werror" @@ fun () ->
  let tc = ensure_cc () in
  let build = fresh_dir () in
  let werror = { tc with Native.Toolchain.cflags = [ "-Werror" ] } in
  List.iteri
    (fun i (name, src) ->
      match Driver.compile_to_c ~guards:true ~exec_harness:true full src with
      | Driver.Failed ds ->
          Alcotest.failf "%s: emit failed: %s" name (Driver.diags_to_string ds)
      | Driver.Ok_ c_text -> (
          let c_file = Filename.concat build (Printf.sprintf "g%d.c" i) in
          Out_channel.with_open_text c_file (fun oc ->
              Out_channel.output_string oc c_text);
          Out_channel.with_open_text (Filename.concat build "mm_runtime.h")
            (fun oc -> Out_channel.output_string oc Native.Runtime_c.header);
          Out_channel.with_open_text (Filename.concat build "mm_runtime.c")
            (fun oc -> Out_channel.output_string oc Native.Runtime_c.impl);
          match
            Native.Toolchain.compile werror
              ~c_files:[ c_file; Filename.concat build "mm_runtime.c" ]
              ~out:(Filename.concat build (Printf.sprintf "g%d.exe" i))
          with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "%s (guards) not warning-clean under -Werror: %s"
                name
                (Native.Toolchain.describe_error e)))
    [
      ("fig1", Eddy.Programs.fig1_temporal_mean);
      ("fig4", Eddy.Programs.fig4_conncomp);
      ("fig8", Eddy.Programs.fig8_scoring);
      ("oob", oob_src);
    ]

(* --- the native fault matrix ------------------------------------------------ *)

(* {native.alloc, native.io.read_matrix} x {sequential, 2 OpenMP threads}
   x {fire on the 1st hit, fire on the 5th} x {guards off, guards on}:
   sixteen cells through Fig 1's temporal mean.  The invariant mirrors
   the interpreter matrix: no hang, and either the bit-exact oracle
   output (a failpoint the run never reached, or a parallel crash the
   driver recovered by sequential degrade) or a structured error
   diagnostic — never an OCaml exception, never a bare exit code. *)
let test_native_fault_matrix () =
  with_deadline ~secs:480 "native fault matrix" @@ fun () ->
  ignore (ensure_cc ());
  let cube =
    Nd.init_float [| 4; 5; 30 |] (fun ix ->
        float_of_int ((ix.(0) * 7) + (ix.(1) * 3) + ix.(2)) /. 11.0)
  in
  let src = Eddy.Programs.fig1_temporal_mean in
  let run_case ?failpoints ?(guards = false) ~threads () =
    let dir = fresh_dir () in
    Interp.Eval.provide_input ~dir "ssh.data" cube;
    match
      Driver.exec ~dir ~config:(Driver.config_of_flags ~auto_par:true full)
        ~threads ~guards ?failpoints
        ~cache_dir:(Lazy.force suite_cache) full src
    with
    | Driver.Ok_ _ -> Ok (Interp.Eval.fetch_output ~dir "means.data")
    | Driver.Failed ds -> Error ds
  in
  let oracle =
    match run_case ~threads:1 () with
    | Ok m -> m
    | Error ds ->
        Alcotest.failf "clean run failed: %s" (Driver.diags_to_string ds)
  in
  List.iter
    (fun fp_name ->
      List.iter
        (fun threads ->
          List.iter
            (fun k ->
              List.iter
                (fun guards ->
                  let label =
                    Printf.sprintf "%s@%d t%d %s" fp_name k threads
                      (if guards then "guards" else "plain")
                  in
                  let spec = Printf.sprintf "%s@%d" fp_name k in
                  match
                    run_case ~failpoints:spec ~guards ~threads ()
                  with
                  | Ok m ->
                      Alcotest.check nd (label ^ ": output is the oracle")
                        oracle m
                  | Error [] ->
                      Alcotest.failf "%s: failed without diagnostics" label
                  | Error ((d : Support.Diag.t) :: _) ->
                      if d.Support.Diag.severity <> Support.Diag.Error then
                        Alcotest.failf "%s: non-error diagnostic" label;
                      if contains d.Support.Diag.message "exit code" then
                        Alcotest.failf "%s: untriaged exit code: %s" label
                          d.Support.Diag.message)
                [ false; true ])
            [ 1; 5 ])
        [ 1; 2 ])
    [ "native.alloc"; "native.io.read_matrix" ]

(* --- the acceptance scenario ------------------------------------------------ *)

(* A fault-injected crash mid-parallel native run of the eddy detection
   program: the driver must degrade to a sequential rerun with the
   failpoints disarmed, the program must complete, the output must be
   bit-identical to the sequential oracle, and the degradation must be
   visible in telemetry. *)
let test_eddy_degraded_native_acceptance () =
  with_deadline ~secs:300 "eddy native degraded" @@ fun () ->
  ignore (ensure_cc ());
  with_telemetry @@ fun () ->
  let cube, dates =
    let c, _ =
      Eddy.Ssh_gen.generate ~lat:10 ~lon:12 ~time:3 ~n_eddies:2 ~seed:11 ()
    in
    (c, Nd.init_int [| 3 |] (fun ix -> 1012000 + ix.(0)))
  in
  let src = Eddy.Programs.fig4_conncomp in
  let run_case ?failpoints ~threads () =
    let dir = fresh_dir () in
    Interp.Eval.provide_input ~dir "ssh.data" cube;
    Interp.Eval.provide_input ~dir "dates.data" dates;
    match
      Driver.exec ~dir ~config:(Driver.config_of_flags ~auto_par:true full)
        ~threads ?failpoints
        ~cache_dir:(Lazy.force suite_cache) full src
    with
    | Driver.Ok_ _ -> Interp.Eval.fetch_output ~dir "eddyLabels.data"
    | Driver.Failed ds ->
        Alcotest.failf "native run failed: %s" (Driver.diags_to_string ds)
  in
  let oracle = run_case ~threads:1 () in
  let got = run_case ~failpoints:"native.alloc@1" ~threads:2 () in
  Alcotest.check nd "degraded output bit-identical to sequential oracle"
    oracle got;
  match List.assoc_opt "native.degraded" (T.gauges ()) with
  | Some v when v >= 1. -> ()
  | v ->
      Alcotest.failf "native.degraded gauge: %s"
        (match v with None -> "absent" | Some f -> string_of_float f)

let suite =
  [
    Alcotest.test_case "signal exits decode, never raw codes" `Quick
      test_describe_signal_exit;
    Alcotest.test_case "result-protocol parser is total" `Quick
      test_parse_output_total;
    Alcotest.test_case "span strings round-trip" `Quick
      test_span_string_roundtrip;
    Alcotest.test_case "guards: OOB subscript renders a caret" `Quick
      test_guard_oob_caret;
    Alcotest.test_case "unguarded OOB stays structured" `Quick
      test_oob_unguarded_structured;
    Alcotest.test_case "failpoint: native.alloc diagnostic" `Quick
      test_failpoint_alloc_diag;
    Alcotest.test_case "failpoint: crash span under guards" `Quick
      test_failpoint_crash_span_with_guards;
    Alcotest.test_case "failpoint: native.io.read_matrix diagnostic" `Quick
      test_failpoint_read_matrix_diag;
    Alcotest.test_case "supervisor: deadline kill names --timeout" `Quick
      test_supervisor_timeout_kill;
    Alcotest.test_case "supervisor: timeout exports telemetry" `Quick
      test_timeout_telemetry;
    Alcotest.test_case "sanitizers: corpus runs under asan/ubsan" `Quick
      test_sanitized_corpus_runs;
    Alcotest.test_case "guards: corpus emits -Werror-clean C" `Quick
      test_guarded_corpus_werror;
    Alcotest.test_case "native fault matrix: 16 cells" `Quick
      test_native_fault_matrix;
    Alcotest.test_case "acceptance: native degrade is bit-identical" `Quick
      test_eddy_degraded_native_acceptance;
  ]
