(* Benchmark harness regenerating every experiment in DESIGN.md §4.

   The paper's evaluation is qualitative (§V: "we intentionally do not
   provide any performance numbers here"), so each group reproduces a
   CLAIM's shape rather than an absolute number:

     C1  near-linear scaling of auto-parallelized with-loops (§V ¶1)
     C2  with-loop/assignment fusion vs library-style temp+copy (§III-A5)
     C3  slice-copy elimination (§III-A5)
     C4  programmer-directed transformation variants (§V)
     C5  enhanced fork-join pool vs naive spawn-per-region (§III-C)
     C6  refcounting overhead and allocator behaviour (§III-B/C)
     C7  composition cost and the composability analyses (§VI)
     C8  parallel cache-blocked runtime kernels (§III-C), exported to
         BENCH_kernels.json

   Micro-kernels are measured with Bechamel (OLS over the monotonic
   clock); whole-program runs with repeated wall-clock medians.  Results
   are summarised against the paper's claims in EXPERIMENTS.md.

   [--smoke] runs only the C8 kernel group at tiny sizes plus a
   spawn-per-region sanity check (seconds, no JSON output) — the target
   `make check` invokes so the perf plumbing cannot bit-rot silently. *)

open Bechamel
open Toolkit
module Nd = Runtime.Ndarray

let cores = Domain.recommended_domain_count ()

(* --- measurement helpers ----------------------------------------------------- *)

let bechamel_group name (tests : Test.t list) =
  Fmt.pr "@.--- %s (Bechamel OLS, monotonic clock) ---@." name;
  let grouped = Test.make_grouped ~name tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun k v acc ->
        let est =
          match Analyze.OLS.estimates v with Some [ e ] -> e | _ -> nan
        in
        (k, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (k, ns) ->
      if ns >= 1e6 then Fmt.pr "  %-48s %10.3f ms/run@." k (ns /. 1e6)
      else if ns >= 1e3 then Fmt.pr "  %-48s %10.3f us/run@." k (ns /. 1e3)
      else Fmt.pr "  %-48s %10.1f ns/run@." k ns)
    rows;
  rows

(* median wall-clock of [reps] runs *)
let wall ?(reps = 3) f =
  let times =
    List.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
    |> List.sort compare
  in
  List.nth times (reps / 2)

(* Minimum wall-clock of [reps] runs: the right statistic when two
   variants of the same computation are compared for a small additive
   cost (C13) — the min is the least-noise floor of each, where the
   median still carries scheduler jitter several times the effect. *)
let wall_min ?(reps = 5) f =
  List.init reps (fun _ ->
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0)
  |> List.fold_left min infinity

(* --- shared setup ---------------------------------------------------------------- *)

let c_full = Driver.compose [ Driver.matrix; Driver.transform; Driver.refptr ]
let c_norc = Driver.compose [ Driver.matrix; Driver.transform ]

let with_input cube f =
  let dir = Filename.temp_file "mmbench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Interp.Eval.provide_input ~dir "ssh.data" cube;
  f dir

let run_prog ?pool ?(fuse = true) ?(auto_par = false) ?optimize ~c ~dir src =
  let config = Driver.config_of_flags ~fuse ~auto_par c in
  match Driver.run ~dir ?pool ~config ?optimize c src [] with
  | Driver.Ok_ _ -> ()
  | Driver.Failed ds ->
      Fmt.epr "bench program failed: %s@." (Driver.diags_to_string ds);
      exit 1

let cube ~m ~n ~p =
  Nd.init_float [| m; n; p |] (fun ix ->
      float_of_int ((7 * ix.(0)) + (3 * ix.(1)) + ix.(2)) /. 97.)

(* --- telemetry capture ------------------------------------------------------- *)

(* Machine-readable per-phase numbers for each claim group, exported to
   BENCH_telemetry.json.  Each group runs one *representative* workload
   with telemetry enabled, separate from the timed loops above, so the
   instrumentation can never perturb the measurements. *)
let telemetry_groups : (string * string) list ref = ref []

let instrumented group f =
  Support.Telemetry.reset ();
  Support.Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Support.Telemetry.set_enabled false)
    f;
  telemetry_groups :=
    (group, Support.Telemetry.to_json ()) :: !telemetry_groups;
  (match Support.Telemetry.span_totals () with
  | [] -> ()
  | totals ->
      let top = List.filteri (fun i _ -> i < 3) totals in
      Fmt.pr "  [%s telemetry] %a@." group
        Fmt.(
          list ~sep:(any ", ") (fun ppf (n, calls, secs) ->
              pf ppf "%s x%d %.1fms" n calls (secs *. 1000.)))
        top);
  Support.Telemetry.reset ()

let write_bench_telemetry () =
  let groups = List.rev !telemetry_groups in
  let oc = open_out "BENCH_telemetry.json" in
  output_string oc "{\"groups\":{";
  List.iteri
    (fun i (name, json) ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc "%S:%s" name json)
    groups;
  output_string oc "}}\n";
  close_out oc;
  Fmt.pr "telemetry written to BENCH_telemetry.json (%d groups)@."
    (List.length groups)

(* --- C1: scaling of auto-parallelized with-loops ----------------------------------- *)

let bench_scaling () =
  Fmt.pr "@.=== C1: with-loop scaling on the fork-join pool (§V ¶1) ===@.";
  Fmt.pr "machine cores: %d  (near-linear speedup is only observable up to \
          the core count; the paper used 2 x 6-core)@."
    cores;
  let data = cube ~m:48 ~n:48 ~p:24 in
  let threads = [ 1; 2; 4; 8 ] in
  let base = ref 0. in
  Fmt.pr "  %8s %12s %9s@." "threads" "wall (ms)" "speedup";
  List.iter
    (fun t ->
      let secs =
        if t = 1 then
          with_input data (fun dir ->
              wall (fun () ->
                  run_prog ~c:c_full ~dir ~auto_par:true
                    Eddy.Programs.fig1_temporal_mean))
        else
          Runtime.Pool.with_pool t (fun pool ->
              with_input data (fun dir ->
                  wall (fun () ->
                      run_prog ~c:c_full ~dir ~pool ~auto_par:true
                        Eddy.Programs.fig1_temporal_mean)))
      in
      if t = 1 then base := secs;
      Fmt.pr "  %8d %12.1f %9.2fx@." t (secs *. 1000.) (!base /. secs))
    threads;
  instrumented "C1" (fun () ->
      Runtime.Pool.with_pool 2 (fun pool ->
          with_input data (fun dir ->
              run_prog ~c:c_full ~dir ~pool ~auto_par:true
                Eddy.Programs.fig1_temporal_mean)))

(* --- C2: fusion vs library-style temp + copy ----------------------------------------- *)

let bench_fusion () =
  Fmt.pr "@.=== C2: with-loop/assignment fusion (§III-A5) ===@.";
  Fmt.pr "  %-14s %12s %12s %8s@." "size" "fused(ms)" "library(ms)" "ratio";
  List.iter
    (fun (m, n, p) ->
      let data = cube ~m ~n ~p in
      let fused =
        with_input data (fun dir ->
            wall (fun () ->
                run_prog ~c:c_full ~dir ~fuse:true
                  Eddy.Programs.fig1_temporal_mean))
      in
      let library =
        with_input data (fun dir ->
            wall (fun () ->
                run_prog ~c:c_full ~dir ~fuse:false
                  Eddy.Programs.fig1_temporal_mean))
      in
      Fmt.pr "  %4dx%4dx%3d %12.1f %12.1f %8.2fx@." m n p (fused *. 1000.)
        (library *. 1000.) (library /. fused))
    (* small p makes the library's result copy large relative to the
       fold work, which is where fusion matters *)
    [ (64, 64, 2); (96, 96, 2); (64, 64, 16) ];
  instrumented "C2" (fun () ->
      let data = cube ~m:64 ~n:64 ~p:2 in
      with_input data (fun dir ->
          run_prog ~c:c_full ~dir ~fuse:true Eddy.Programs.fig1_temporal_mean;
          run_prog ~c:c_full ~dir ~fuse:false
            Eddy.Programs.fig1_temporal_mean))

(* --- C3: slice-copy elimination -------------------------------------------------------- *)

let bench_slice_elim () =
  Fmt.pr "@.=== C3: slice-copy elimination (§III-A5) ===@.";
  Fmt.pr "  %-14s %14s %14s %11s %11s@." "size" "optimized(ms)" "naive(ms)"
    "allocs opt" "allocs no";
  List.iter
    (fun (m, n, p) ->
      let data = cube ~m ~n ~p in
      let measure ~optimize =
        with_input data (fun dir ->
            Runtime.Rc.reset ();
            let t =
              wall ~reps:3 (fun () ->
                  run_prog ~c:c_full ~dir ~optimize
                    Eddy.Programs.fig1_with_slice_copy)
            in
            (t, (Runtime.Rc.stats ()).Runtime.Rc.allocs))
      in
      let t_opt, a_opt = measure ~optimize:true in
      let t_no, a_no = measure ~optimize:false in
      Fmt.pr "  %4dx%4dx%3d %14.1f %14.1f %11d %11d@." m n p (t_opt *. 1000.)
        (t_no *. 1000.) a_opt a_no)
    [ (16, 16, 16); (32, 32, 24) ];
  instrumented "C3" (fun () ->
      let data = cube ~m:16 ~n:16 ~p:16 in
      with_input data (fun dir ->
          run_prog ~c:c_full ~dir ~optimize:true
            Eddy.Programs.fig1_with_slice_copy))

(* --- C4: transformation variants (§V) --------------------------------------------------- *)

let bench_transform_variants () =
  Fmt.pr "@.=== C4: programmer-directed transformation variants (§V) ===@.";
  let data = cube ~m:48 ~n:64 ~p:32 in
  let variants =
    [
      ("baseline (Fig 3)", Eddy.Programs.fig1_temporal_mean, 1);
      ( "split j by 4 (Fig 10)",
        Eddy.Programs.fig9_with_script "split j by 4, jin, jout",
        1 );
      ( "split + vectorize (Fig 11)",
        Eddy.Programs.fig9_with_script
          "split j by 4, jin, jout. vectorize jin",
        1 );
      ("tile i,j by 8", Eddy.Programs.fig9_with_script "tile i, j by 8", 1);
      ( "interchange i,j",
        Eddy.Programs.fig9_with_script "interchange i, j",
        1 );
      ("full Fig 9 script (2 threads)", Eddy.Programs.fig9_transformed, 2);
      ( "split k + unroll kin by 4",
        Eddy.Programs.fig9_with_script
          "split k by 4, kin, kout. unroll kin by 4",
        1 );
    ]
  in
  Fmt.pr "  %-32s %12s@." "variant" "wall (ms)";
  List.iter
    (fun (label, src, threads) ->
      let secs =
        if threads > 1 then
          Runtime.Pool.with_pool threads (fun pool ->
              with_input data (fun dir ->
                  wall (fun () -> run_prog ~c:c_full ~dir ~pool src)))
        else
          with_input data (fun dir ->
              wall (fun () -> run_prog ~c:c_full ~dir src))
      in
      Fmt.pr "  %-32s %12.1f@." label (secs *. 1000.))
    variants;
  instrumented "C4" (fun () ->
      with_input data (fun dir ->
          run_prog ~c:c_full ~dir
            (Eddy.Programs.fig9_with_script "tile i, j by 8")))

(* --- C5: enhanced fork-join vs naive spawn-per-region ------------------------------------ *)

let bench_forkjoin () =
  Fmt.pr "@.=== C5: enhanced fork-join (§III-C) ===@.";
  let regions = 200 and work = 2_000 in
  let sink = Array.make work 0 in
  let body i = sink.(i) <- sink.(i) + 1 in
  let pool_time t =
    Runtime.Pool.with_pool t (fun pool ->
        wall (fun () ->
            for _ = 1 to regions do
              Runtime.Pool.parallel_for pool 0 work body
            done))
  in
  let naive_time t =
    wall ~reps:1 (fun () ->
        for _ = 1 to regions do
          Runtime.Pool.naive_parallel_for t 0 work body
        done)
  in
  Fmt.pr "  %d parallel regions of %d iterations each:@." regions work;
  Fmt.pr "  %8s %12s %22s %8s@." "threads" "pool (ms)"
    "spawn-per-region (ms)" "ratio";
  List.iter
    (fun t ->
      let p = pool_time t and n = naive_time t in
      Fmt.pr "  %8d %12.1f %22.1f %8.1fx@." t (p *. 1000.) (n *. 1000.)
        (n /. p))
    [ 2; 4 ];
  instrumented "C5" (fun () ->
      Runtime.Pool.with_pool 2 (fun pool ->
          for _ = 1 to regions do
            Runtime.Pool.parallel_for pool 0 work body
          done))

(* --- C6: refcounting overhead -------------------------------------------------------------- *)

let bench_refcount () =
  Fmt.pr "@.=== C6: reference counting (§III-B/C) ===@.";
  let data = cube ~m:32 ~n:32 ~p:16 in
  let with_rc =
    with_input data (fun dir ->
        wall (fun () ->
            run_prog ~c:c_full ~dir Eddy.Programs.fig1_temporal_mean))
  in
  let without_rc =
    with_input data (fun dir ->
        wall (fun () ->
            run_prog ~c:c_norc ~dir Eddy.Programs.fig1_temporal_mean))
  in
  Fmt.pr "  Fig 1 workload: rc on %.1f ms, rc off %.1f ms (overhead %+.1f%%)@."
    (with_rc *. 1000.)
    (without_rc *. 1000.)
    (((with_rc /. without_rc) -. 1.) *. 100.);
  (* §III-C: "most allocations made are relatively infrequent and are
     large" — hot-path costs of the rc primitives: *)
  ignore
    (bechamel_group "rc primitives"
       [
         Test.make ~name:"alloc+release 4KiB payload"
           (Staged.stage (fun () ->
                let cell = Runtime.Rc.alloc ~bytes:4096 (Array.make 512 0.) in
                Runtime.Rc.decr_ cell));
         Test.make ~name:"inc/dec pair on a live cell"
           (let cell = Runtime.Rc.alloc ~bytes:0 () in
            Staged.stage (fun () ->
                Runtime.Rc.incr_ cell;
                Runtime.Rc.decr_ cell));
       ]);
  instrumented "C6" (fun () ->
      with_input data (fun dir ->
          run_prog ~c:c_full ~dir Eddy.Programs.fig1_temporal_mean))

(* --- C7: composition cost and analyses (§VI) ------------------------------------------------ *)

let bench_composition () =
  Fmt.pr "@.=== C7: grammar composition and composability analyses (§VI) ===@.";
  let time_of f = wall ~reps:3 f in
  let t_host =
    time_of (fun () -> ignore (Grammar.Lalr.build Driver.effective_host))
  in
  let t_matrix =
    time_of (fun () ->
        ignore
          (Grammar.Lalr.build
             (Grammar.Cfg.compose Driver.effective_host
                [ Ext_matrix.Matrix_ext.grammar ])))
  in
  let t_all =
    time_of (fun () ->
        ignore
          (Grammar.Lalr.build
             (Grammar.Cfg.compose Driver.effective_host
                [
                  Ext_matrix.Matrix_ext.grammar;
                  Ext_transform.Transform_ext.grammar;
                ])))
  in
  let t_analysis =
    time_of (fun () ->
        ignore
          (Grammar.Determinism.check Driver.effective_host
             Ext_matrix.Matrix_ext.grammar))
  in
  let t_compose_full =
    time_of (fun () -> ignore (Driver.compose Driver.all_extensions))
  in
  let states sel = (Driver.compose sel).Driver.table.Grammar.Lalr.n_states in
  Fmt.pr "  %-46s %10s %8s@." "configuration" "time (ms)" "states";
  Fmt.pr "  %-46s %10.1f %8d@." "host alone (LALR tables)" (t_host *. 1000.)
    (states []);
  Fmt.pr "  %-46s %10.1f %8d@." "host + matrix" (t_matrix *. 1000.)
    (states [ Driver.matrix ]);
  Fmt.pr "  %-46s %10.1f %8d@." "host + matrix + transform" (t_all *. 1000.)
    (states [ Driver.matrix; Driver.transform ]);
  Fmt.pr "  %-46s %10.1f %8s@." "isComposable(host, matrix)"
    (t_analysis *. 1000.) "-";
  Fmt.pr "  %-46s %10.1f %8s@."
    "full compose (analyses + tables + scanner DFAs)"
    (t_compose_full *. 1000.) "-";
  Fmt.pr "  analyses verdicts: matrix/transform/refptr PASS; tuples FAILS \
          (host-packaged) — see examples/extensibility_demo.@.";
  instrumented "C7" (fun () ->
      ignore (Driver.compose Driver.all_extensions))

(* --- C8: parallel cache-blocked kernels (§III-C) --------------------------------------------- *)

(* C12 rows (prog, interp_ms, native_ms, compile_ms); filled by
   [bench_native] before the C8 group writes BENCH_kernels.json. *)
let native_rows : (string * float * float * float) list ref = ref []

(* C13 rows (prog, plain_ms, instrumented_ms, overhead_pct); filled by
   [bench_native_profile] before the C8 group writes BENCH_kernels.json. *)
let native_profile_rows : (string * float * float * float) list ref = ref []

(* C14 rows (prog, plain_ms, guards_ms, overhead_pct); filled by
   [bench_native_guards] before the C8 group writes BENCH_kernels.json. *)
let native_guards_rows : (string * float * float * float) list ref = ref []

(* Seq naive vs seq blocked vs blocked-on-a-4-worker-pool, the speedup
   table behind the ISSUE 2 acceptance bar (>= 2x at 512x512 with 4
   workers vs the sequential baseline).  On a machine with fewer than 4
   cores the win comes from the cache/register blocking itself; extra
   cores stack their speedup on top. *)
let bench_blocked_kernels ~smoke () =
  Fmt.pr "@.=== C8: parallel cache-blocked kernels (§III-C) ===@.";
  let sizes = if smoke then [ 16; 48 ] else [ 64; 128; 256; 512; 1024 ] in
  let mk s =
    ( Nd.init_float [| s; s |] (fun ix ->
          float_of_int (((7 * ix.(0)) + (3 * ix.(1))) mod 97) /. 97.),
      Nd.init_float [| s; s |] (fun ix ->
          float_of_int (((5 * ix.(0)) + ix.(1)) mod 89) /. 89.) )
  in
  Fmt.pr "  matmul (float), block=%d:@." (Nd.get_block_size ());
  Fmt.pr "  %6s %12s %13s %12s %9s %9s@." "size" "naive(ms)" "blocked(ms)"
    "par4(ms)" "blk-spd" "par4-spd";
  let matmul_rows =
    List.map
      (fun s ->
        let a, b = mk s in
        let reps = if s >= 1024 then 1 else 3 in
        let naive = wall ~reps (fun () -> ignore (Nd.matmul_naive a b)) in
        let blocked = wall ~reps (fun () -> ignore (Nd.matmul_blocked a b)) in
        let par4 =
          Runtime.Pool.with_pool 4 (fun pool ->
              wall ~reps (fun () -> ignore (Nd.matmul ~pool a b)))
        in
        Fmt.pr "  %6d %12.2f %13.2f %12.2f %8.2fx %8.2fx@." s (naive *. 1000.)
          (blocked *. 1000.) (par4 *. 1000.) (naive /. blocked)
          (naive /. par4);
        (s, naive, blocked, par4))
      sizes
  in
  let elems = if smoke then 65_536 else 4_194_304 in
  let v = Nd.init_float [| elems |] (fun ix -> float_of_int ix.(0) /. 7.) in
  let w = Nd.init_float [| elems |] (fun ix -> float_of_int (ix.(0) mod 13)) in
  let ew_seq =
    wall (fun () -> ignore (Nd.arith Runtime.Scalar.Add v w))
  in
  let ew_par =
    Runtime.Pool.with_pool 4 (fun pool ->
        wall (fun () -> ignore (Nd.arith ~pool Runtime.Scalar.Add v w)))
  in
  let red_seq = wall (fun () -> ignore (Nd.sum_float v)) in
  let red_par =
    Runtime.Pool.with_pool 4 (fun pool ->
        wall (fun () -> ignore (Nd.sum_float ~pool v)))
  in
  Fmt.pr "  elementwise add %d elems: seq %.2f ms, pool-4 %.2f ms (%.2fx)@."
    elems (ew_seq *. 1000.) (ew_par *. 1000.) (ew_seq /. ew_par);
  Fmt.pr "  sum reduction   %d elems: seq %.2f ms, pool-4 %.2f ms (%.2fx)@."
    elems (red_seq *. 1000.) (red_par *. 1000.) (red_seq /. red_par);
  if not smoke then begin
    let oc = open_out "BENCH_kernels.json" in
    Printf.fprintf oc
      "{\"machine_cores\":%d,\"block\":%d,\"grain\":%d,\n \"matmul\":[" cores
      (Nd.get_block_size ()) (Nd.get_par_grain ());
    List.iteri
      (fun i (s, naive, blocked, par4) ->
        if i > 0 then output_string oc ",\n  ";
        Printf.fprintf oc
          "{\"size\":%d,\"naive_ms\":%.3f,\"blocked_ms\":%.3f,\"par4_ms\":%.3f,\"speedup_blocked\":%.2f,\"speedup_par4\":%.2f}"
          s (naive *. 1000.) (blocked *. 1000.) (par4 *. 1000.)
          (naive /. blocked) (naive /. par4))
      matmul_rows;
    Printf.fprintf oc
      "],\n \"elementwise\":{\"elems\":%d,\"seq_ms\":%.3f,\"par4_ms\":%.3f,\"speedup\":%.2f},\n"
      elems (ew_seq *. 1000.) (ew_par *. 1000.) (ew_seq /. ew_par);
    Printf.fprintf oc
      " \"reduce\":{\"elems\":%d,\"seq_ms\":%.3f,\"par4_ms\":%.3f,\"speedup\":%.2f}"
      elems (red_seq *. 1000.) (red_par *. 1000.) (red_seq /. red_par);
    (match List.rev !native_rows with
    | [] -> ()
    | rows ->
        output_string oc ",\n \"native\":[";
        List.iteri
          (fun i (prog, interp_ms, native_ms, compile_ms) ->
            if i > 0 then output_string oc ",\n  ";
            Printf.fprintf oc
              "{\"prog\":%S,\"interp_ms\":%.3f,\"native_ms\":%.3f,\"compile_ms\":%.3f,\"speedup\":%.2f}"
              prog interp_ms native_ms compile_ms (interp_ms /. native_ms))
          rows;
        output_string oc "]");
    (match List.rev !native_profile_rows with
    | [] -> ()
    | rows ->
        output_string oc ",\n \"native_profile\":[";
        List.iteri
          (fun i (prog, plain_ms, instr_ms, overhead_pct) ->
            if i > 0 then output_string oc ",\n  ";
            Printf.fprintf oc
              "{\"prog\":%S,\"plain_ms\":%.3f,\"instrumented_ms\":%.3f,\"overhead_pct\":%.2f}"
              prog plain_ms instr_ms overhead_pct)
          rows;
        output_string oc "]");
    (match List.rev !native_guards_rows with
    | [] -> ()
    | rows ->
        output_string oc ",\n \"native_guards\":[";
        List.iteri
          (fun i (prog, plain_ms, guards_ms, overhead_pct) ->
            if i > 0 then output_string oc ",\n  ";
            Printf.fprintf oc
              "{\"prog\":%S,\"plain_ms\":%.3f,\"guards_ms\":%.3f,\"overhead_pct\":%.2f}"
              prog plain_ms guards_ms overhead_pct)
          rows;
        output_string oc "]");
    output_string oc "}\n";
    close_out oc;
    Fmt.pr "  kernel numbers written to BENCH_kernels.json@."
  end;
  instrumented "C8" (fun () ->
      let a, b = mk (if smoke then 48 else 256) in
      Runtime.Pool.with_pool 4 (fun pool -> ignore (Nd.matmul ~pool a b)))

(* --- C12: native execution vs the interpreter (§II) ------------------------------------------- *)

(* The paper's pipeline hands the emitted C to "a traditional compiler";
   `mmc exec` does exactly that.  C12 measures what that buys: end-to-end
   wall time of the interpreted path (`mmc run`) against the native path
   (`mmc exec`, binary cache warm so compilation is excluded), plus the
   one-time cost of the C compile itself.  Rows land in
   BENCH_kernels.json as {prog, interp_ms, native_ms, compile_ms} and are
   regression-gated by `bench --compare` like every other kernel. *)

let native_progs =
  [
    ("fig1", Eddy.Programs.fig1_temporal_mean);
    ("fig9", Eddy.Programs.fig9_transformed);
  ]

let native_cube () = cube ~m:48 ~n:64 ~p:32

let fresh_cache_dir () =
  let d = Filename.temp_file "mmbcache" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let exec_native ~cache_dir ~dir src =
  match Driver.exec ~dir ~cache_dir c_full src with
  | Driver.Ok_ o -> o
  | Driver.Failed ds ->
      Fmt.epr "native bench program failed: %s@." (Driver.diags_to_string ds);
      exit 1

let bench_native () =
  Fmt.pr "@.=== C12: native execution vs interpreter (§II) ===@.";
  match Native.Toolchain.probe () with
  | Error e ->
      Fmt.pr "  skipped: %s@." (Native.Toolchain.describe_error e)
  | Ok tc ->
      Fmt.pr "  cc: %s%s@." tc.Native.Toolchain.cc
        (if tc.Native.Toolchain.openmp then " (OpenMP live)"
         else " (no OpenMP: sequential fallback)");
      let data = native_cube () in
      let cache_dir = fresh_cache_dir () in
      Fmt.pr "  %-8s %12s %12s %13s %9s@." "prog" "interp(ms)" "native(ms)"
        "compile(ms)" "speedup";
      List.iter
        (fun (name, src) ->
          with_input data (fun dir ->
              let interp =
                wall (fun () -> run_prog ~c:c_full ~dir src)
              in
              (* Cold exec fills the cache; the compile-time gauge is the
                 C compiler's share of it. *)
              Support.Telemetry.reset ();
              Support.Telemetry.set_enabled true;
              ignore (exec_native ~cache_dir ~dir src);
              let compile_ms =
                match
                  List.assoc_opt "native.compile_ns"
                    (Support.Telemetry.gauges ())
                with
                | Some ns -> ns /. 1e6
                | None -> 0.
              in
              Support.Telemetry.set_enabled false;
              Support.Telemetry.reset ();
              (* Warm path: frontend + lower + cache hit + run. *)
              let native =
                wall (fun () -> ignore (exec_native ~cache_dir ~dir src))
              in
              native_rows :=
                (name, interp *. 1000., native *. 1000., compile_ms)
                :: !native_rows;
              Fmt.pr "  %-8s %12.1f %12.1f %13.1f %8.2fx@." name
                (interp *. 1000.) (native *. 1000.) compile_ms
                (interp /. native)))
        native_progs;
      instrumented "C12" (fun () ->
          with_input data (fun dir ->
              ignore
                (exec_native ~cache_dir ~dir Eddy.Programs.fig1_temporal_mean)))

(* --- C13: native profiling overhead and interp/native span ratios (§II) ----------------------- *)

(* The instrumented binary pays one mm_prof_enter/exit pair per executed
   provenance span plus a worker-clock read per parallel region; the
   acceptance bar is <10% end-to-end overhead on the paper corpus.
   Warm-cache wall times of plain `mmc exec` vs `mmc profile --native`
   land in BENCH_kernels.json as {prog, plain_ms, instrumented_ms,
   overhead_pct} and are regression-gated by `bench --compare`; the
   per-span interp/native self-time ratios go out as C13 telemetry
   gauges so the BENCH trajectory tracks where native code gains least. *)

let profile_example name =
  List.find_opt Sys.file_exists
    [ Filename.concat "examples" name; Filename.concat "../examples" name ]
  |> Option.map (fun p -> In_channel.with_open_text p In_channel.input_all)

let native_profile_progs () =
  [
    ("fig1", Some Eddy.Programs.fig1_temporal_mean);
    ("fig9", Some Eddy.Programs.fig9_transformed);
    ("eddy_energy", profile_example "eddy_energy.mc");
  ]

(* [~auto_par:false] matches the sequential lowering [exec_native] uses,
   so plain and instrumented binaries differ only in the probes — with
   the default auto-par lowering the instrumented side would also pay
   one GOMP single-thread region launch per dispatch (~1.8 ms on
   eddy_energy), which is OpenMP overhead, not instrumentation. *)
let profile_native_once ~cache_dir ~dir src =
  match
    Driver.profile_native
      ~config:(Driver.config_of_flags ~auto_par:false c_full)
      ~dir ~cache_dir c_full src
  with
  | Driver.Ok_ (o, report) -> (o, report)
  | Driver.Failed ds ->
      Fmt.epr "native profile bench failed: %s@." (Driver.diags_to_string ds);
      exit 1

let bench_native_profile () =
  Fmt.pr "@.=== C13: native profiling overhead (§II) ===@.";
  match Native.Toolchain.probe () with
  | Error e -> Fmt.pr "  skipped: %s@." (Native.Toolchain.describe_error e)
  | Ok _ ->
      let data = native_cube () in
      let cache_dir = fresh_cache_dir () in
      Fmt.pr "  %-12s %10s %16s %9s %9s@." "prog" "plain(ms)"
        "instrumented(ms)" "overhead" "coverage";
      List.iter
        (fun (name, src) ->
          match src with
          | None -> Fmt.pr "  %-12s source not found — skipped@." name
          | Some src ->
              with_input data (fun dir ->
                  (* cold runs fill both cache slots, so the timed reps
                     measure the run, not the C compiler *)
                  ignore (exec_native ~cache_dir ~dir src);
                  let _, report = profile_native_once ~cache_dir ~dir src in
                  let plain =
                    wall_min ~reps:7 (fun () ->
                        ignore (exec_native ~cache_dir ~dir src))
                  in
                  let instr =
                    wall_min ~reps:7 (fun () ->
                        ignore (profile_native_once ~cache_dir ~dir src))
                  in
                  let overhead = (instr -. plain) /. plain *. 100. in
                  native_profile_rows :=
                    (name, plain *. 1000., instr *. 1000., overhead)
                    :: !native_profile_rows;
                  Fmt.pr "  %-12s %10.2f %16.2f %8.1f%% %8.1f%%@." name
                    (plain *. 1000.) (instr *. 1000.) overhead
                    (Driver.Profile_report.coverage report *. 100.)))
        (native_profile_progs ());
      instrumented "C13" (fun () ->
          with_input data (fun dir ->
              let src = Eddy.Programs.fig1_temporal_mean in
              let interp =
                match
                  Driver.profile
                    ~config:(Driver.config_of_flags ~auto_par:false c_full)
                    ~dir c_full src []
                with
                | Driver.Ok_ _, report -> report
                | Driver.Failed ds, _ ->
                    Fmt.epr "interp profile bench failed: %s@."
                      (Driver.diags_to_string ds);
                    exit 1
              in
              let _, native = profile_native_once ~cache_dir ~dir src in
              let d =
                Driver.Profile_report.diff_reports ~src ~interp ~native
              in
              Support.Telemetry.set_gauge "profile.program_ratio"
                d.Driver.Profile_report.program_ratio;
              Support.Telemetry.set_gauge "profile.native_coverage"
                (Driver.Profile_report.coverage native);
              List.iter
                (fun (r : Driver.Profile_report.diff_row) ->
                  Option.iter
                    (Support.Telemetry.set_gauge
                       ("profile.span_ratio." ^ r.Driver.Profile_report.d_span))
                    r.Driver.Profile_report.d_speedup)
                d.Driver.Profile_report.diff_rows))

(* --- C14: emitted-C runtime guard overhead (§II) ---------------------------------------------- *)

(* `mmc exec --guards` routes every emitted subscript through the
   MM_GUARD_IDX bounds/NULL check and pushes crash breadcrumbs around
   provenance sites; the acceptance bar is <=15% end-to-end overhead on
   the paper corpus.  Warm-cache min-of-7 wall times of plain vs guarded
   `mmc exec` land in BENCH_kernels.json as {prog, plain_ms, guards_ms,
   overhead_pct} and are regression-gated by `bench --compare`. *)

let exec_native_guards ~cache_dir ~dir src =
  match Driver.exec ~guards:true ~dir ~cache_dir c_full src with
  | Driver.Ok_ o -> o
  | Driver.Failed ds ->
      Fmt.epr "guarded bench program failed: %s@." (Driver.diags_to_string ds);
      exit 1

let bench_native_guards () =
  Fmt.pr "@.=== C14: runtime guard overhead (§II) ===@.";
  match Native.Toolchain.probe () with
  | Error e -> Fmt.pr "  skipped: %s@." (Native.Toolchain.describe_error e)
  | Ok _ ->
      let data = native_cube () in
      let cache_dir = fresh_cache_dir () in
      Fmt.pr "  %-12s %10s %12s %9s@." "prog" "plain(ms)" "guards(ms)"
        "overhead";
      List.iter
        (fun (name, src) ->
          match src with
          | None -> Fmt.pr "  %-12s source not found — skipped@." name
          | Some src ->
              with_input data (fun dir ->
                  (* cold runs fill both cache slots, so the timed reps
                     measure the run, not the C compiler *)
                  ignore (exec_native ~cache_dir ~dir src);
                  ignore (exec_native_guards ~cache_dir ~dir src);
                  let plain =
                    wall_min ~reps:7 (fun () ->
                        ignore (exec_native ~cache_dir ~dir src))
                  in
                  let guarded =
                    wall_min ~reps:7 (fun () ->
                        ignore (exec_native_guards ~cache_dir ~dir src))
                  in
                  let overhead = (guarded -. plain) /. plain *. 100. in
                  native_guards_rows :=
                    (name, plain *. 1000., guarded *. 1000., overhead)
                    :: !native_guards_rows;
                  Fmt.pr "  %-12s %10.2f %12.2f %8.1f%%@." name
                    (plain *. 1000.) (guarded *. 1000.) overhead))
        (native_profile_progs ());
      instrumented "C14" (fun () ->
          with_input data (fun dir ->
              ignore
                (exec_native_guards ~cache_dir ~dir
                   Eddy.Programs.fig1_temporal_mean)))

(* --- C11: optimization-remark counts over the paper corpus ------------------------------------ *)

(* Lower every corpus program through Driver.explain and record the
   remark tallies as [remark.<pass>.<kind>] gauges, so the BENCH_*.json
   trajectory tracks how many decisions each pass takes (and how many it
   declines) on the paper's own programs.  Also times the remark tax:
   lowering with collection on vs. off. *)
let bench_remarks () =
  Fmt.pr "@.=== C11: optimization remarks over the paper corpus ===@.";
  let corpus =
    [
      ("fig1", Eddy.Programs.fig1_temporal_mean);
      ("fig4", Eddy.Programs.fig4_conncomp);
      ("fig9", Eddy.Programs.fig9_transformed);
      ("fig1-slice-copy", Eddy.Programs.fig1_with_slice_copy);
    ]
  in
  let explain_all () =
    List.concat_map
      (fun (_, src) ->
        match Driver.explain c_full src with
        | Driver.Ok_ _, report -> report.Driver.Explain_report.remarks
        | Driver.Failed _, _ -> [])
      corpus
  in
  let lower_all () =
    List.iter
      (fun (_, src) ->
        match Driver.frontend c_full src with
        | Driver.Ok_ ast ->
            ignore
              (Driver.lower ~config:(Driver.explain_config c_full) c_full ast)
        | Driver.Failed _ -> ())
      corpus
  in
  Support.Remark.set_enabled false;
  let off = wall lower_all in
  let remarks = explain_all () in
  Support.Remark.set_enabled false;
  let on = wall (fun () -> ignore (explain_all ())) in
  Support.Remark.set_enabled false;
  Fmt.pr "  %-24s %8s %8s %8s@." "pass" "applied" "missed" "skipped";
  List.iter
    (fun (pass, a, m, s) -> Fmt.pr "  %-24s %8d %8d %8d@." pass a m s)
    (Support.Remark.counts remarks);
  Fmt.pr "  remark tax: lowering %.1f ms silent, %.1f ms collecting@."
    (off *. 1000.) (on *. 1000.);
  instrumented "C11" (fun () ->
      let remarks = explain_all () in
      Support.Remark.set_enabled false;
      List.iter
        (fun (pass, a, m, s) ->
          let g kind v =
            Support.Telemetry.set_gauge
              (Printf.sprintf "remark.%s.%s" pass kind)
              (float_of_int v)
          in
          g "applied" a;
          g "missed" m;
          g "skipped" s)
        (Support.Remark.counts remarks))

(* --- runtime micro-kernels (context for the groups above) ------------------------------------ *)

let bench_kernels () =
  let a =
    Nd.init_float [| 256; 256 |] (fun ix -> float_of_int (ix.(0) + ix.(1)))
  in
  let b =
    Nd.init_float [| 256; 256 |] (fun ix ->
        float_of_int (ix.(0) * ix.(1) mod 97))
  in
  let sm = Nd.init_float [| 64; 64 |] (fun ix -> float_of_int ix.(0) +. 1.) in
  let buf = Array.init 4096 float_of_int in
  let out = Array.make 4096 0. in
  ignore
    (bechamel_group "runtime kernels"
       [
         Test.make ~name:"ndarray elementwise add 256x256"
           (Staged.stage (fun () -> ignore (Nd.arith Runtime.Scalar.Add a b)));
         Test.make ~name:"ndarray matmul 64x64"
           (Staged.stage (fun () -> ignore (Nd.matmul sm sm)));
         Test.make ~name:"simd add 4-lane over 4096 floats"
           (Staged.stage (fun () ->
                let i = ref 0 in
                while !i + 4 <= 4096 do
                  Runtime.Simd.store out !i
                    (Runtime.Simd.add
                       (Runtime.Simd.load buf !i ~width:4)
                       (Runtime.Simd.load out !i ~width:4));
                  i := !i + 4
                done));
         Test.make ~name:"scalar add over 4096 floats"
           (Staged.stage (fun () ->
                for i = 0 to 4095 do
                  out.(i) <- out.(i) +. buf.(i)
                done));
       ])

(* --- bench --compare: regression gate against a committed baseline ---------------- *)

(* Re-measure the C8 kernels at the baseline's sizes (capped so the gate
   runs in seconds, not minutes) and fail on >25% slowdown of any kernel
   vs the committed BENCH_kernels.json.  Speed-ups and small noise pass;
   the gate is for catching real regressions in the blocked matmul, the
   pooled elementwise path or the pooled reduction. *)
let compare_threshold = 1.25
let compare_size_cap = 256
let compare_elems_cap = 1_048_576

let bench_compare baseline_path =
  let module J = Support.Json in
  let baseline =
    try J.parse_file baseline_path
    with
    | Sys_error m ->
        Fmt.epr "bench --compare: cannot read %s: %s@." baseline_path m;
        exit 2
    | J.Bad_json m ->
        Fmt.epr "bench --compare: %s is not valid JSON: %s@." baseline_path m;
        exit 2
  in
  Fmt.pr "=== bench --compare vs %s (fail on >%.0f%% slowdown) ===@."
    baseline_path
    ((compare_threshold -. 1.) *. 100.);
  let failures = ref 0 in
  let check name ~baseline_ms ~current_ms =
    let ratio = current_ms /. baseline_ms in
    let bad = ratio > compare_threshold in
    if bad then incr failures;
    Fmt.pr "  %-28s baseline %9.2f ms   now %9.2f ms   %5.2fx %s@." name
      baseline_ms current_ms ratio
      (if bad then "REGRESSION" else "ok")
  in
  let mk s =
    ( Nd.init_float [| s; s |] (fun ix ->
          float_of_int (((7 * ix.(0)) + (3 * ix.(1))) mod 97) /. 97.),
      Nd.init_float [| s; s |] (fun ix ->
          float_of_int (((5 * ix.(0)) + ix.(1)) mod 89) /. 89.) )
  in
  (match Option.bind (J.field "matmul" baseline) J.arr with
  | None -> Fmt.epr "  baseline has no \"matmul\" array — skipping@."
  | Some rows ->
      List.iter
        (fun row ->
          match J.num_field row "size" with
          | Some size when int_of_float size <= compare_size_cap ->
              let s = int_of_float size in
              let a, b = mk s in
              let measure label getter f =
                match J.num_field row getter with
                | None -> ()
                | Some base_ms ->
                    let cur = wall ~reps:5 f *. 1000. in
                    check
                      (Printf.sprintf "matmul %s %dx%d" label s s)
                      ~baseline_ms:base_ms ~current_ms:cur
              in
              measure "naive" "naive_ms" (fun () ->
                  ignore (Nd.matmul_naive a b));
              measure "blocked" "blocked_ms" (fun () ->
                  ignore (Nd.matmul_blocked a b));
              (* pool lives across the reps — the baseline bench times the
                 dispatch, not domain spawn/shutdown *)
              Runtime.Pool.with_pool 4 (fun pool ->
                  measure "par4" "par4_ms" (fun () ->
                      ignore (Nd.matmul ~pool a b)))
          | _ -> ())
        rows);
  let scaled_1d group label f =
    (* 1-D kernels: the baseline ran at its recorded [elems]; re-measure
       at min(baseline, cap) and scale the baseline linearly — these
       kernels are O(n). *)
    match J.field group baseline with
    | None -> Fmt.epr "  baseline has no %S object — skipping@." group
    | Some obj -> (
        match (J.num_field obj "elems", J.num_field obj "seq_ms") with
        | Some elems, Some seq_ms ->
            let elems = int_of_float elems in
            let n = min elems compare_elems_cap in
            let scale = float_of_int n /. float_of_int elems in
            let v =
              Nd.init_float [| n |] (fun ix -> float_of_int ix.(0) /. 7.)
            in
            let w =
              Nd.init_float [| n |] (fun ix -> float_of_int (ix.(0) mod 13))
            in
            let cur = wall ~reps:5 (fun () -> f v w) *. 1000. in
            check
              (Printf.sprintf "%s seq (%d elems)" label n)
              ~baseline_ms:(seq_ms *. scale) ~current_ms:cur
        | _ -> ())
  in
  scaled_1d "elementwise" "elementwise add" (fun v w ->
      ignore (Nd.arith Runtime.Scalar.Add v w));
  scaled_1d "reduce" "sum reduction" (fun v _ -> ignore (Nd.sum_float v));
  (* C12 rows: re-run each baselined program through the warm native path
     and gate its wall time like any other kernel.  Without a C compiler
     the rows are reported as skipped, never failed. *)
  (match Option.bind (J.field "native" baseline) J.arr with
  | None -> ()
  | Some rows -> (
      match Native.Toolchain.probe () with
      | Error e ->
          Fmt.epr "  baseline has native rows but %s — skipping@."
            (Native.Toolchain.describe_error e)
      | Ok _ ->
          let cache_dir = fresh_cache_dir () in
          let data = native_cube () in
          List.iter
            (fun row ->
              match
                ( Option.bind (J.field "prog" row) J.str,
                  J.num_field row "native_ms" )
              with
              | Some prog, Some base_ms -> (
                  match List.assoc_opt prog native_progs with
                  | None ->
                      Fmt.epr "  baseline native row %S unknown — skipping@."
                        prog
                  | Some src ->
                      with_input data (fun dir ->
                          (* first exec compiles; the timed reps hit the cache *)
                          ignore (exec_native ~cache_dir ~dir src);
                          let cur =
                            wall ~reps:5 (fun () ->
                                ignore (exec_native ~cache_dir ~dir src))
                            *. 1000.
                          in
                          check ("native " ^ prog) ~baseline_ms:base_ms
                            ~current_ms:cur))
              | _ -> ())
            rows));
  (* C13 rows: re-run each baselined program through the warm
     instrumented path (`mmc profile --native` machinery) and gate its
     wall time like any other kernel; skipped without a C compiler. *)
  (match Option.bind (J.field "native_profile" baseline) J.arr with
  | None -> ()
  | Some rows -> (
      match Native.Toolchain.probe () with
      | Error e ->
          Fmt.epr "  baseline has native_profile rows but %s — skipping@."
            (Native.Toolchain.describe_error e)
      | Ok _ ->
          let cache_dir = fresh_cache_dir () in
          let data = native_cube () in
          let srcs = native_profile_progs () in
          List.iter
            (fun row ->
              match
                ( Option.bind (J.field "prog" row) J.str,
                  J.num_field row "instrumented_ms" )
              with
              | Some prog, Some base_ms -> (
                  match List.assoc_opt prog srcs with
                  | Some (Some src) ->
                      with_input data (fun dir ->
                          (* first run compiles; the timed reps hit the
                             instrumented cache slot *)
                          ignore (profile_native_once ~cache_dir ~dir src);
                          let cur =
                            wall_min ~reps:7 (fun () ->
                                ignore
                                  (profile_native_once ~cache_dir ~dir src))
                            *. 1000.
                          in
                          check
                            ("native-profile " ^ prog)
                            ~baseline_ms:base_ms ~current_ms:cur)
                  | _ ->
                      Fmt.epr
                        "  baseline native_profile row %S unavailable — \
                         skipping@."
                        prog)
              | _ -> ())
            rows));
  (* C14 rows: re-run each baselined program with runtime guards on the
     warm guarded cache slot and gate its wall time; skipped without a C
     compiler. *)
  (match Option.bind (J.field "native_guards" baseline) J.arr with
  | None -> ()
  | Some rows -> (
      match Native.Toolchain.probe () with
      | Error e ->
          Fmt.epr "  baseline has native_guards rows but %s — skipping@."
            (Native.Toolchain.describe_error e)
      | Ok _ ->
          let cache_dir = fresh_cache_dir () in
          let data = native_cube () in
          let srcs = native_profile_progs () in
          List.iter
            (fun row ->
              match
                ( Option.bind (J.field "prog" row) J.str,
                  J.num_field row "guards_ms" )
              with
              | Some prog, Some base_ms -> (
                  match List.assoc_opt prog srcs with
                  | Some (Some src) ->
                      with_input data (fun dir ->
                          (* first run compiles; the timed reps hit the
                             guarded cache slot *)
                          ignore (exec_native_guards ~cache_dir ~dir src);
                          let cur =
                            wall_min ~reps:7 (fun () ->
                                ignore
                                  (exec_native_guards ~cache_dir ~dir src))
                            *. 1000.
                          in
                          check
                            ("native-guards " ^ prog)
                            ~baseline_ms:base_ms ~current_ms:cur)
                  | _ ->
                      Fmt.epr
                        "  baseline native_guards row %S unavailable — \
                         skipping@."
                        prog)
              | _ -> ())
            rows));
  if !failures > 0 then begin
    Fmt.pr "@.%d kernel(s) regressed beyond %.0f%%.@." !failures
      ((compare_threshold -. 1.) *. 100.);
    exit 1
  end
  else Fmt.pr "@.no kernel regressed beyond %.0f%%.@."
         ((compare_threshold -. 1.) *. 100.)

(* --- bench --check-profile-json: schema validator for `mmc profile --json` -------- *)

(* The structural contract itself lives in
   [Driver.Profile_report.validate_json] — the same checker the test
   suite applies to both the interpreter's and the native backend's
   reports, so `mmc profile --json` and `mmc profile --native --json`
   are held to one schema from one place.  This wrapper only adds file
   IO and the exit-code protocol for `make profile-check`. *)
let check_profile_json path =
  let module J = Support.Json in
  let problems =
    try Driver.Profile_report.validate_json (J.parse_file path) with
    | Sys_error m -> [ Printf.sprintf "cannot read %s: %s" path m ]
    | J.Bad_json m -> [ Printf.sprintf "invalid JSON: %s" m ]
  in
  match problems with
  | [] ->
      Fmt.pr "%s: profile JSON schema ok.@." path;
      exit 0
  | ps ->
      List.iter (fun p -> Fmt.epr "%s: %s@." path p) ps;
      exit 1

(* --- bench --check-explain-json: schema validator for `mmc explain --json` -------- *)

(* Same contract style as [check_profile_json]: every remark entry names
   a known pass and kind, carries a span object with numeric fields and a
   non-empty message; the counts object holds the three numeric tallies
   per pass. *)
let check_explain_json path =
  let module J = Support.Json in
  let problems = ref [] in
  let bad fmt = Format.kasprintf (fun m -> problems := m :: !problems) fmt in
  let known_passes = [ "fuse"; "copy-elim"; "auto-par"; "rc"; "transform" ] in
  let known_kinds = [ "applied"; "missed"; "skipped" ] in
  (try
     let j = J.parse_file path in
     (match Option.bind (J.field "remarks" j) J.arr with
     | None -> bad "top-level: missing array \"remarks\""
     | Some remarks ->
         List.iteri
           (fun i r ->
             let ctx = Printf.sprintf "remarks[%d]" i in
             (match Option.bind (J.field "pass" r) J.str with
             | Some p when List.mem p known_passes -> ()
             | Some p -> bad "%s: unknown pass %S" ctx p
             | None -> bad "%s: missing string \"pass\"" ctx);
             (match Option.bind (J.field "kind" r) J.str with
             | Some k when List.mem k known_kinds -> ()
             | Some k -> bad "%s: unknown kind %S" ctx k
             | None -> bad "%s: missing string \"kind\"" ctx);
             (match Option.bind (J.field "message" r) J.str with
             | Some m when String.length m > 0 -> ()
             | Some _ -> bad "%s: empty message" ctx
             | None -> bad "%s: missing string \"message\"" ctx);
             (match J.field "span" r with
             | Some span ->
                 List.iter
                   (fun name ->
                     if J.num_field span name = None then
                       bad "%s: span missing number %S" ctx name)
                   [ "line"; "col"; "end_line"; "end_col" ]
             | None -> bad "%s: missing object \"span\"" ctx);
             match J.field "details" r with
             | Some (J.Obj _) | None -> ()
             | Some _ -> bad "%s: \"details\" is not an object" ctx)
           remarks);
     match J.field "counts" j with
     | None -> bad "top-level: missing object \"counts\""
     | Some (J.Obj passes) ->
         List.iter
           (fun (pass, tallies) ->
             if not (List.mem pass known_passes) then
               bad "counts: unknown pass %S" pass;
             List.iter
               (fun k ->
                 if J.num_field tallies k = None then
                   bad "counts.%s: missing number %S" pass k)
               known_kinds)
           passes
     | Some _ -> bad "top-level: \"counts\" is not an object"
   with
  | Sys_error m -> bad "cannot read %s: %s" path m
  | J.Bad_json m -> bad "invalid JSON: %s" m);
  match List.rev !problems with
  | [] ->
      Fmt.pr "%s: explain JSON schema ok.@." path;
      exit 0
  | ps ->
      List.iter (fun p -> Fmt.epr "%s: %s@." path p) ps;
      exit 1

(* Smoke mode: tiny-size kernel pass + one spawn-per-region sanity run
   (keeps [Pool.naive_parallel_for], the C5 baseline, exercised). *)
let smoke_check () =
  bench_blocked_kernels ~smoke:true ();
  let sink = Array.make 1_000 0 in
  Runtime.Pool.naive_parallel_for 2 0 1_000 (fun i -> sink.(i) <- i);
  let ok = Array.for_all (fun x -> x >= 0) sink in
  Fmt.pr "  spawn-per-region baseline smoke: %s@." (if ok then "ok" else "FAIL");
  if not ok then exit 1;
  Fmt.pr "@.smoke ok.@."

(* Value of a "--flag FILE" pair on the command line. *)
let flag_value name =
  let argv = Sys.argv in
  let r = ref None in
  Array.iteri
    (fun i a ->
      if String.equal a name && i + 1 < Array.length argv then
        r := Some argv.(i + 1))
    argv;
  !r

let () =
  (match flag_value "--check-profile-json" with
  | Some path -> check_profile_json path
  | None -> ());
  (match flag_value "--check-explain-json" with
  | Some path -> check_explain_json path
  | None -> ());
  (match flag_value "--compare" with
  | Some path ->
      bench_compare path;
      exit 0
  | None -> ());
  let smoke = Array.exists (String.equal "--smoke") Sys.argv in
  Fmt.pr "mmc benchmark harness — regenerates the experiment groups of \
          DESIGN.md §4%s@."
    (if smoke then " (smoke mode)" else "");
  Fmt.pr "machine: %d core(s) visible to OCaml@." cores;
  if smoke then smoke_check ()
  else begin
    bench_kernels ();
    bench_composition ();
    bench_fusion ();
    bench_slice_elim ();
    bench_transform_variants ();
    bench_forkjoin ();
    bench_refcount ();
    bench_scaling ();
    bench_native ();
    bench_native_profile ();
    bench_native_guards ();
    bench_blocked_kernels ~smoke:false ();
    bench_remarks ();
    write_bench_telemetry ();
    Fmt.pr "@.done.@."
  end
