# Convenience wrappers around dune; `make check` is the CI entry point:
# build + full test suite + the benchmark smoke pass (tiny sizes), so the
# perf plumbing of bench/ cannot bit-rot silently.

.PHONY: all test bench bench-smoke check clean

all:
	dune build

test:
	dune runtest

# Full benchmark sweep; writes BENCH_kernels.json and BENCH_telemetry.json.
bench:
	dune exec bench/main.exe

# Seconds, not minutes: kernel group at tiny sizes + pool baselines.
bench-smoke:
	dune build @bench-smoke

check: all test bench-smoke

clean:
	dune clean
