# Convenience wrappers around dune; `make check` is the CI entry point:
# build + full test suite + the benchmark smoke pass (tiny sizes) + the
# chaos/stress pass (fault injection, crash containment, resource
# guards) + the native backend pass (emitted C compiled and diffed
# against the interpreter) + the profiler and explain JSON contracts, so
# neither the perf plumbing of bench/ nor the `mmc profile --json` /
# `mmc explain --json` schemas can bit-rot silently.

.PHONY: all test bench bench-smoke bench-compare stress native-check native-faults-check profile-check profile-native-check explain-check check clean

all:
	dune build

test:
	dune runtest

# Full benchmark sweep; writes BENCH_kernels.json and BENCH_telemetry.json.
bench:
	dune exec bench/main.exe

# Seconds, not minutes: kernel group at tiny sizes + pool baselines.
bench-smoke:
	dune build @bench-smoke

# Regression gate: re-measure the C8 kernels at capped sizes and exit
# non-zero if any is >25% slower than the committed baseline numbers.
bench-compare: all
	dune exec bench/main.exe -- --compare BENCH_kernels.json

# Chaos/stress pass: every failpoint through real programs in both
# execution modes, pool crash containment, degraded-mode fallback and
# the cooperative resource guards.  Each case runs under a hard SIGALRM
# deadline inside the suite, so a containment bug fails fast instead of
# hanging CI.
stress:
	dune build @stress-smoke

# Native backend pass: compile every corpus program's emitted C with the
# system compiler and diff it against the interpreter bit-for-bit (plus
# binary-cache, --keep-c and -Werror cases).  Each case skips with a
# visible notice when no C compiler is installed, so the target always
# succeeds on compiler-less machines without hiding that nothing ran.
native-check:
	dune build @native-check

# Supervised-execution pass: runtime guard faults (--guards), crash
# triage to source spans, MM_FAILPOINTS parity, supervisor
# timeout/rlimit kills, sanitizer builds and the 16-cell native fault
# matrix — all against real compiled binaries.  Each case skips with a
# visible notice when no C compiler is installed.
native-faults-check:
	dune build @native-faults-check

# Run the source-attributed profiler on an example and validate the
# machine-readable output against the schema checker in the bench binary.
profile-check: all
	dune exec bin/mmc.exe -- profile examples/eddy_energy.mc --json \
	  > _build/profile_check.json
	dune exec bench/main.exe -- --check-profile-json _build/profile_check.json

# Same contract for the native profiler: compile an example with
# instrumentation, run it, and validate `mmc profile --native --json`
# against the same schema checker — so the interpreted and native
# reports cannot drift apart.  Skips with a notice when no C compiler
# is installed, mirroring the native-check convention.
profile-native-check: all
	@if command -v $${MMC_CC:-cc} >/dev/null 2>&1; then \
	  dune exec bin/mmc.exe -- profile examples/eddy_energy.mc --native --json \
	    > _build/profile_native_check.json && \
	  dune exec bench/main.exe -- --check-profile-json _build/profile_native_check.json; \
	else \
	  echo "profile-native-check: SKIP (no C compiler: $${MMC_CC:-cc} not found)"; \
	fi

# Collect optimization remarks for an example and validate the
# machine-readable output against the schema checker in the bench binary.
explain-check: all
	dune exec bin/mmc.exe -- explain examples/transform_tiling.mc --json \
	  > _build/explain_check.json
	dune exec bench/main.exe -- --check-explain-json _build/explain_check.json

check: all test bench-smoke stress native-check native-faults-check profile-check profile-native-check explain-check

clean:
	dune clean
